// Package graphcache is a semantic caching system for subgraph and
// supergraph queries over graph datasets — a from-scratch Go implementation
// of "GraphCache: A Caching System for Graph Queries" (Wang, Ntarmos &
// Triantafillou, EDBT 2017).
//
// # The problem
//
// A graph query is itself a small labelled graph g. Against a dataset
// D = {G_1 … G_n}, a subgraph query returns every G_i that contains g
// (g ⊆ G_i); a supergraph query returns every G_i contained in g. Both
// entail the NP-complete subgraph-isomorphism test, so query processors
// either run a sub-iso algorithm against every dataset graph (the SI
// methods: VF2, VF2+, GraphQL, …) or first prune the dataset with a
// feature index and verify only the survivors (the filter-then-verify,
// FTV, methods: GraphGrepSX, Grapes, CT-Index, …).
//
// # What GraphCache adds
//
// GraphCache sits in front of any such "Method M" and remembers past
// queries together with their answer sets. A new query q benefits not only
// from an exact (isomorphic) hit but from any cached query g' related to
// it by containment:
//
//   - if q ⊆ g', every graph in the answer set of g' is an answer for q and is
//     lifted out of the candidate set (Eq. 1 of the paper);
//   - if g' ⊆ q, no graph outside the answer set of g' can be an answer for q,
//     so the candidate set is intersected with it (Eq. 2);
//   - if g' ⊆ q and the answer set of g' is empty, q's answer is provably
//     empty and no verification runs at all.
//
// The pruning rules are sound — a Cache always returns exactly the answer
// the wrapped method would, never a false positive or negative.
//
// Cache contents are managed in batches through a Window, with an optional
// admission-control filter that keeps inexpensive queries from polluting
// the cache, and one of five replacement policies: LRU, POP, PIN, PINC and
// the hybrid HD, which picks between PIN and PINC at eviction time from
// the coefficient of variation of the observed savings.
//
// # Concurrency
//
// The query engine is concurrent on two axes, mirroring the paper's sized
// thread pools (§4, Figure 2). A Cache is safe for any number of
// concurrent Query callers: serials are assigned atomically, the GCindex
// snapshot is read lock-free, window appends are mutex-guarded and
// per-query statistics are credited in one batched store update. Within a
// single query, Method M's verification stage and the GC processors'
// containment confirmations fan out over a bounded worker pool sized by
// Options.VerifyConcurrency (default runtime.GOMAXPROCS(0); 1 disables
// the cache's own fan-out — methods with internal verification
// parallelism, like Grapes with multiple threads, keep their own pool).
// The pool's extra workers are shared across all concurrent callers: N
// callers run at most N + VerifyConcurrency − 1 verification workers in
// total, not N × VerifyConcurrency. By default each query's fan-out is
// additionally sized adaptively, from an EWMA of recent candidate-set
// lengths, so tiny candidate sets stop waking the full pool
// (Options.DisableAdaptiveVerify restores the fixed fan-out). Answers are
// deterministic and id-ordered at any pool size and under any caller
// interleaving.
//
// # Sharded store layout
//
// The cached-query store is physically partitioned into Options.Shards
// shards (default: the next power of two ≥ GOMAXPROCS), keyed by a hash
// of each entry's path-feature counts. Every shard owns its own GCindex
// snapshot, window segment and statistics columns, so on many-core
// machines concurrent callers stop sharing one index pointer, one window
// lock and one statistics mutex. The partition is physical only — the
// store remains one logical set, with these guarantees:
//
//   - Probes fan out across all shards (through the shared worker pool)
//     and merge in ascending serial order: answers are identical at any
//     shard count, and Shards=1 reproduces the unsharded layout exactly.
//   - The Window stays a global unit: the Window Manager fires when the
//     segments jointly hold WindowSize entries, and admission control
//     (calibration and the adaptive threshold) observes whole windows.
//     Per-shard rebuilds then run in parallel.
//   - Eviction runs the replacement policy independently per shard
//     against a proportional (largest-remainder) share of CacheSize, so
//     the global capacity is respected exactly while hot shards keep
//     proportionally more entries.
//   - Isomorphic queries have identical feature counts and therefore
//     route to the same shard, which keeps the exact-match, window-dedup
//     and concurrent-duplicate guards shard-local.
//   - Snapshots are shard-count independent: WriteSnapshot flattens the
//     shards into one serial-ordered list, and ReadSnapshot re-derives
//     the routing, so a snapshot written with N shards loads into a
//     cache configured with M.
//
// Index maintenance is incremental — each window applies add/evict deltas
// to the previous per-shard GCindex generation using feature vectors
// memoised per entry (computed once, on the query path, shared with the
// probe), so rebuild cost is O(window), not O(cache) — and can run
// asynchronously (Options.AsyncRebuild). Snapshot loading (ReadSnapshot)
// is the one startup-only operation that must not run concurrently with
// queries.
//
// # GCindex internals
//
// GCindex is one combined subgraph/supergraph feature index per shard
// over the cached query graphs, and its candidate probe — run once per
// shard per query — is the hottest loop in the system. Two ingredients
// keep it allocation-free:
//
//   - Feature vocabulary. Each cache interns every path-feature key (a
//     label sequence, encoded as a string) into a dense uint32 feature ID,
//     assigned in first-seen order and shared by all shards. A query's
//     features are extracted once and converted to a feature vector — ID-
//     sorted (ID, count) pairs — that is then reused everywhere the query
//     goes: the index probe in every shard, the shard-routing hash
//     (computed from per-ID key hashes precomputed at intern time), the
//     admission window entry and the index delta. The vocabulary grows
//     monotonically and is bounded by the feature space (label alphabet ^
//     path length), not by the cache size.
//
//   - Columnar postings. Each indexed query occupies a slot, slots are
//     assigned in ascending-serial order, and each feature ID owns an
//     immutable column of (slot, count) postings sorted by slot. A probe
//     walks the query vector's columns bumping two flat []int32 counters
//     (dominated-features and covered-features per slot, pooled scratch),
//     then scans the slots once: fully-dominated slots are sub-candidates,
//     fully-covered ones super-candidates — already in ascending serial
//     order because slot order is serial order. No maps, no sort, zero
//     allocations at steady state (BenchmarkCandidates pins 0 allocs/op).
//
// Window deltas keep the columnar layout incremental: added entries claim
// fresh slots on top and rewrite only their features' columns (every
// other column is shared with the previous index generation); evicted
// entries leave tombstone slots that are masked at scan time, and the
// index compacts — renumbering slots — once tombstones outnumber live
// entries, bounding the scan overhead at 2×. A property test pins the
// columnar probe to a map-based reference implementation on randomly
// mutated caches.
//
// # Batched execution
//
// Cache.QueryBatch processes a slice of queries as one unit: every
// shard's index snapshot is loaded once per batch and probed in a single
// pass, the GC containment confirmations and Method-M verifications of
// all queries flatten into one pooled dispatch per stage, and the whole
// batch's hit statistics land in a single store round-trip per shard.
// Answers are exactly those of sequential Query calls — the pruning rules
// are sound, so answers never depend on cache contents — aligned with the
// input, id-ordered and deterministic. BenchmarkQueryBatch tracks the
// amortisation (batched execution is never slower than sequential and
// wins on multi-core machines).
//
// # Serving over the network
//
// GraphCache deploys as a standalone service with cmd/gcserved — the
// paper's caching system front-ending one Method M for many clients:
//
//	gcgen dataset -name aids -count-factor 0.01 -o aids.g
//	gcserved -dataset aids.g -method ggsx -snapshot aids.snap &
//	gcquery -server 127.0.0.1:7621 -queries queries.g
//
// The daemon speaks an HTTP/JSON API whose payloads embed graphs in the
// same t/v/e text format datasets ship in, so non-Go clients need no
// codec beyond printing a graph file: POST /query answers one query,
// POST /querybatch a batch (one QueryBatch execution), GET /stats reports
// the lifetime totals and GET /healthz liveness. Concurrently-arriving
// single queries are coalesced into batched QueryBatch executions under a
// configurable max-batch-size/max-delay window, so the service boundary
// amortises filter dispatch and statistics application under load while
// adding at most the delay window to a lone query's latency. With
// -snapshot, cache contents load on start and persist on SIGTERM through
// graceful shutdown — the paper's Cache Manager lifecycle at the daemon
// boundary.
//
// In Go, NewServer embeds the same serving subsystem in any process and
// NewServerClient is the matching client; see examples/server for a
// complete program.
//
// # Wire protocol
//
// Every layer speaks two wire formats and negotiates them per message;
// answers are byte-identical across formats and transports, so old
// clients work unchanged and mixed fleets never disagree.
//
// Framing. The default is the JSON envelope around t/v/e text described
// above. The compact alternative is a length-prefixed binary frame: for
// graphs, magic "GCBF" + version byte + uvarint graph count, then one
// uvarint-length-prefixed body per graph (zigzag-varint id, a label
// table, vertex label indices, and delta-encoded edges — typically 4x
// smaller than the JSON envelope, and cheaper to code); for results,
// magic "GCRB" + version + uvarint count, then per result the answer
// IDs delta-encoded ascending plus the stats/trace as a JSON metadata
// blob. The per-item length prefixes make torn frames detectable and
// let a reader bound-check without decoding.
//
// Negotiation. Formats are chosen by standard HTTP content negotiation,
// request and response independently: Content-Type:
// application/x-gc-binary marks a binary request body, Accept:
// application/x-gc-binary asks for a binary result frame, and anything
// else means JSON. GET /healthz advertises the capability in the
// X-GC-Wire header, so a router's health probes double as capability
// discovery: it upgrades each backend link to binary as probes find the
// capability, while still answering each of its own clients in whatever
// format that client negotiated — the two legs never constrain each
// other. In Go, ServerClientOptions.WireBinary (or SetBinaryWire at
// runtime) flips a client's format; gcquery takes -wire text|binary.
//
// Streaming. POST /querybatch with Accept: application/x-ndjson streams
// the batch instead of buffering it: one JSON StreamResult line per
// query, flushed as its verification completes, in request order by
// default or tagged with the request index under ?order=arrival. The
// request coalescer delivers per-waiter results the same way as they
// land, so a lone /query held in a batch returns as soon as its own
// verification is done. A router scatter-gathers per-backend streams
// (always arrival-ordered upstream) and re-stitches them into one
// client stream in the client's requested order. In Go this is
// ServerClient.QueryBatchStream; on the command line, gcquery -stream.
//
// Cancellation. A client that walks away mid-stream (closes the
// response, or its callback returns an error) propagates as a request-
// context cancellation: the server abandons the batch's remaining
// verification work — results already flushed stay valid, pending
// sub-iso tests are skipped — and a router forwards the cancellation to
// every backend stream it opened. A backend that dies mid-stream cannot
// fail over once results have been flushed (a re-dispatch could
// duplicate an index), so the router ends the stream with a terminal
// error line instead. Cut streams and skipped verifications are counted
// (graphcache_server_stream_cancelled_total,
// graphcache_server_stream_abandoned_verifications_total,
// graphcache_router_stream_cancelled_total), which CI's wire drill
// asserts on.
//
// # Serving tier
//
// For traffic beyond one daemon, cmd/gcrouter fronts N gcserved
// backends behind the identical wire API — clients cannot tell a router
// from a single gcserved:
//
//	gcserved -dataset aids.g -addr 127.0.0.1:7621 &
//	gcserved -dataset aids.g -addr 127.0.0.1:7622 &
//	gcrouter -backends 127.0.0.1:7621,127.0.0.1:7622 -mode replicate
//	gcquery  -server 127.0.0.1:7631 -queries queries.g
//
// Two routing modes, both keyed by the order-independent hash of a
// query's path-feature vector (so isomorphic — and feature-identical —
// queries always route together):
//
//   - replicate: every backend holds a full cache. Single queries follow
//     feature-hash affinity, concentrating each query population's cache
//     hits on one replica, with a least-pending fallback when the
//     affinity replica is out; batches go whole to the least-pending
//     healthy backend.
//   - shard: queries are partitioned across backends by feature hash, so
//     the fleet's aggregate capacity is N near-disjoint caches; batches
//     are split per backend and scatter-gathered — one QueryBatch per
//     backend — then re-stitched in request order.
//
// Failover leans on the soundness of the pruning rules: any backend
// answers any query correctly (routing only concentrates cache hits),
// so a dispatch that hits a dead backend — transport failure or 5xx —
// re-dispatches the affected queries to a healthy one, and no single
// backend's death fails a request as long as one backend survives.
// Affinity rides a consistent-hash ring over the full backend list (see
// "Elastic fleet"), so a backend dropping out never remaps queries
// between the survivors. GET /stats
// aggregates fleet-wide totals with per-backend detail — breaker state
// and transition counters included — and the router's own counters
// (routed, retried, ejected, shed) as a JSON superset of the gcserved
// payload; GET /healthz stays green while at least one backend is
// dispatchable. In Go, NewRouter embeds the tier in any process; see
// examples/router.
//
// # Load management
//
// The serving tier is engineered for sustained overload and partial
// failure, with four cooperating mechanisms:
//
//   - Circuit breakers. Each backend has one, replacing eject-on-first-
//     failure: dispatch and probe outcomes feed a sliding window
//     (RouterOptions.BreakerWindow) and the breaker opens only when the
//     failure fraction breaches ErrorBudget with at least
//     BreakerMinSamples observations — one unlucky request cannot eject
//     a healthy backend. An open breaker rejects dispatches for
//     BreakerCooldown, then half-opens: up to HalfOpenProbes dispatches
//     go through as probes, and their outcome closes or re-opens the
//     breaker. Transitions are lazy (performed by the next dispatch, not
//     a timer), so a Handler-only embedding with no background prober
//     still readmits recovered backends; the prober, when running,
//     merely accelerates the cycle without spending client requests.
//     Breaker state and monotone transition counters (opens ≥ half_opens
//     ≥ closes) are published per backend in /stats, so a poller
//     observes every open → half-open → closed cycle even between
//     samples.
//
//   - Bounded queues with backpressure. Each backend admits at most
//     QueueBound concurrent dispatches; excess dispatches wait up to
//     QueueTimeout for a slot, cancelled early if the request's own
//     context dies. Routing prefers less-loaded replicas when affinity
//     and load conflict: a query whose affinity home is saturated or
//     broken diverts to the least-loaded available backend instead of
//     queueing behind the hot spot.
//
//   - Overload shedding. When fleet-wide admitted work crosses
//     ShedThreshold (default twice the fleet's aggregate queue depth),
//     /query and /querybatch answer 429 with a Retry-After hint instead
//     of queueing without bound — refusing fast keeps tail latency
//     bounded for the work that is admitted. gcserved has the same
//     back-stop (ServerOptions.ShedThreshold) for deployments without a
//     router. Request contexts propagate end-to-end — front door, queue,
//     coalescer, backend dispatch — so a disconnecting client cancels
//     its queued and in-flight work instead of leaving it to burn
//     capacity.
//
//   - Client resilience. ServerClient (NewServerClientWith) bounds each
//     attempt with ClientOptions.RequestTimeout and retries failures
//     with jittered exponential backoff, honouring the server's
//     Retry-After hint. Retry eligibility follows idempotency: 429/503
//     refusals are always retryable (the work never started), while
//     transport errors and other 5xx replies — where the work may have
//     executed — are retried only for idempotent requests. Queries are
//     idempotent (pruning soundness makes answers depend only on the
//     query), so `gcquery -server -retries N` rides through chaos.
//
// The fault-injection harness behind these guarantees is
// internal/faultproxy and its daemon cmd/gcfault: a chaos proxy that
// injects 503s, latency, severed connections or a full blackhole
// between router and backend, runtime-controllable over its /_chaos
// endpoint. The CI chaos drill parks one behind a router, drops half
// the traffic to one backend, and asserts zero failed client requests
// with the breaker cycle observable in /stats.
//
// # Elastic fleet
//
// The fleet grows and shrinks at runtime without a restart and without
// cold caches:
//
//   - Consistent-hash affinity. Single-query affinity maps the query's
//     feature hash onto a ring of virtual nodes derived purely from
//     backend identity, so adding a backend to a fleet of N remaps only
//     ~1/(N+1) of the key space (the old modulo slot remapped nearly all
//     of it) and removing one hands exactly its share to the survivors.
//     The assignment is deterministic across router restarts. Breaker-
//     open and draining backends stay on the ring: unavailability is a
//     routing-time divert to the least-loaded available backend, never a
//     remap, so a breaker cycle leaves the survivors' cached keys alone.
//
//   - Live topology. With RouterOptions.AdminAddr (gcrouter -admin-addr)
//     the router serves an admin API: POST /backends joins a backend,
//     DELETE /backends/{addr} drains one out, GET /topology shows the
//     fleet as routed right now. Joins are warm-then-serve and drains
//     are drain-then-remove, so neither direction fails a request.
//
//   - Snapshot shipping. A joiner is health-checked, then warmed from
//     the least-loaded healthy peer: the router calls the joiner's
//     POST /warm, which fetches the peer's GET /snapshot — the live
//     cache, streamed in the snapshot format — verifies its checksum
//     trailer and swaps it in behind a warming gate (queries shed 503 +
//     Retry-After for the swap's instant; /healthz reports warming).
//     Only after the snapshot is in and /healthz is green again does the
//     joiner enter the ring: its first dispatch ever hits a warmed
//     cache. gcserved -warm-from does the same at daemon startup.
//
//   - Crash-safe persistence. Every snapshot — shutdown, periodic
//     (ServerOptions.SnapshotInterval), and the /snapshot stream —
//     carries a checksum trailer, and files are written via fsync +
//     rename. A file that is truncated or corrupted anyway is detected
//     at load, quarantined to SnapshotPath+".corrupt" and logged, and
//     the daemon starts cold — a mangled snapshot costs cache warmth,
//     never availability. With SnapshotInterval set, a SIGKILL or power
//     loss costs at most one interval of learned cache entries.
//
// # Dynamic datasets
//
// The dataset is live: graphs can be added, removed and edge-edited
// while queries run, and the cache stays sound — every answer served
// after a mutation is byte-identical to what a cold cache over the
// mutated dataset would compute.
//
// A Dataset is a sequence of immutable generations behind an atomic
// pointer. Readers (queries in flight) hold whichever generation they
// loaded — lock-free, never torn; a mutation builds the next generation
// and publishes it with a single store, advancing the dataset epoch.
// IDs are append-only: additions take fresh IDs, removals leave
// tombstones, so an ID means the same graph forever.
//
// Cache.ApplyMutation applies one Mutation atomically with respect to
// queries (the mutation gate drains in-flight queries, applies, then
// readmits) and repairs the cached answers in place instead of flushing
// them:
//
//   - Additions extend. Each added graph is tested once against each
//     cached query (using the method's own Verify), and cached answers
//     gain the IDs that match. The cache's memoised candidate vectors
//     grow the same way, so pruning stays exact.
//
//   - Removals are exact. A reverse index from dataset ID to the cached
//     entries whose answers contain it pinpoints exactly the entries a
//     removal touches; their answers drop the removed IDs and every
//     other entry is untouched. No entry is invalidated wholesale for a
//     removal.
//
//   - Edits re-verify. An edited graph may enter or leave any cached
//     answer, so each cached query is re-verified against the
//     replacement graph — bounded work: one sub-iso test per cached
//     entry, not a cache flush.
//
// The method's index is maintained through the DynamicMethod extension
// under the same gate: GGSX re-inserts current feature counts (stale
// postings are sound false positives — count domination still holds),
// Grapes purges and re-inserts edited graphs (its occurrence locations
// bound the verify region, so staleness there could lose answers),
// CT-Index grows/zeroes its fingerprint slots, and the SI methods need
// no maintenance at all. ApplyMutation refuses a Method that does not
// implement DynamicMethod with ErrStaticMethod.
//
// Durability: gcserved -journal names a mutation write-ahead log. Each
// POST /mutate is appended and fsynced *before* it is acknowledged, so
// an acked mutation survives kill -9; on restart the journal replays on
// top of the snapshot (whose header binds the dataset fingerprint and
// epoch — a snapshot from a different dataset or epoch is quarantined
// to SnapshotPath+".mismatch", not silently loaded), and the journal is
// truncated once a snapshot covers its prefix.
//
// Fleet propagation: gcrouter's POST /mutate assigns a monotone
// sequence number and fans the mutation to every backend — draining
// ones included — with retries; the seq makes replay idempotent
// end-to-end, so a duplicate ack is safe anywhere. Per-backend epochs
// ride on mutate replies, /stats and the X-GC-Epoch health-probe
// header; a backend behind the fleet epoch (a failed fan-out leg, a
// joiner racing a mutation) is diverted like an open breaker until it
// catches up — partial failure degrades capacity, never soundness.
// Joins land warm *and* current: the snapshot carries the peer's
// epoch, dataset delta and dedupe state, and topology publication is
// serialized against fan-outs.
//
// # Telemetry
//
// Every layer of the serving stack is instrumented; everything is
// dependency-free (internal/telemetry implements the counters,
// gauges, fixed-bucket histograms and the Prometheus text-exposition
// writer and parser itself).
//
// The engine emits per-query observations through Options.Observer, an
// interface receiving one QueryObservation per query — single or
// batched, exactly once — with the GC stage split into feature
// extraction, index probe and confirmation sub-iso time, plus candidate
// counts, verification calls saved and credit granted; and one
// WindowObservation per Window Manager pass. A nil Observer (the
// default) costs one atomic load per query and nothing else, so
// applications that don't observe pay nothing. The serving tier
// installs its metrics sink as the observer, composing with (not
// displacing) any observer the application installed first.
//
// gcserved serves GET /metrics in the Prometheus 0.0.4 text format:
//
//	graphcache_query_duration_seconds{stage=...}  histograms per engine stage
//	    (feature, probe, gcverify, filter_m, filter_gc, verify, total)
//	graphcache_queries_total{path=single|batched}
//	graphcache_query_hits_total{kind=exact|empty|container|containee}
//	graphcache_candidates_total{stage=method|final}, graphcache_query_candidates
//	graphcache_verifications_saved_total, graphcache_credit_saved_total
//	graphcache_window_rebuild_seconds, graphcache_window_{admitted,evicted,rejected}_total
//	graphcache_server_coalesce_wait_seconds, graphcache_server_batch_size
//	graphcache_server_codec_seconds{op=decode|encode}
//	graphcache_server_shed_total, graphcache_server_warmups_total
//	graphcache_server_admitted_queries, graphcache_cached_queries  (gauges)
//	graphcache_mutations_applied_total{op=add|remove|edit}, graphcache_mutation_seconds
//	graphcache_mutation_entries_{extended,reverified,invalidated}_total
//	graphcache_dataset_epoch  (gauge)
//
// gcrouter serves the fleet view on both its query and admin listeners:
//
//	graphcache_query_duration_seconds{stage=...}  rebuilt from backend replies
//	graphcache_router_dispatch_seconds{backend=addr}  per-backend histograms
//	graphcache_router_{routed,retried,shed}_total
//	graphcache_router_breaker_transitions_total{state=open|half_open|closed}
//	graphcache_router_ring_remaps_total{op=join|drain}
//	graphcache_router_backend_queue_depth{backend=addr}  (gauge)
//	graphcache_router_{admitted_queries,backends,backends_available}  (gauges)
//	graphcache_router_mutations_total, graphcache_router_mutations_failed_total
//	graphcache_router_fleet_epoch, graphcache_router_backend_dataset_epoch{backend=addr}  (gauges)
//
// Request tracing: the fleet's front door (router or a lone gcserved)
// mints an X-GC-Request-Id per request, echoes it on the response and
// forwards it on every dispatch, so backend spans and sampled logs carry
// the id minted at the edge. POST /query?debug=trace returns the
// response with a trace: the request id plus named spans from every hop
// (router:decode, router:dispatch addr, server:decode,
// server:coalesce_wait, engine:filter_m, engine:filter_gc,
// engine:verify, engine:total).
//
// Logs are structured (log/slog): -log-json switches the daemons to
// one-line JSON, gcserved -log-every N samples a per-query latency log
// line, and every record carries a component attribute. gcserved -pprof
// and the router's admin listener expose net/http/pprof under
// /debug/pprof/. GET /stats on both daemons reports uptime_seconds,
// go_version and build (main module version + VCS revision) for fleet
// inventory; the router's /topology adds per-backend breaker state age.
//
// # Package layout
//
// This root package is the public API: the labelled-graph model, dataset
// construction and synthetic generators, the six bundled query-processing
// methods, workload generators, and the Cache itself. The implementation
// lives in internal packages (internal/core is the cache, internal/iso the
// matchers, internal/ggsx, internal/grapes and internal/ctindex the FTV
// methods, internal/server the network serving subsystem, internal/router
// the replicated/sharded serving tier); the experiment
// harness reproducing the paper's evaluation is internal/bench, driven by
// cmd/gcbench and the repository-root benchmarks.
//
// # Quick start
//
//	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.05, 1), 42)
//	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})
//	gc := graphcache.New(m, graphcache.Options{CacheSize: 100, WindowSize: 20})
//	res := gc.Query(q) // res.Answer holds the IDs of graphs containing q
//
// Query may be called from any number of goroutines sharing one Cache;
// `gcbench -parallel 8` reports the resulting queries/sec.
//
// See examples/quickstart for a complete program.
package graphcache
