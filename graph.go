package graphcache

import (
	"io"
	"strings"

	"graphcache/internal/graph"
)

// Graph is an immutable undirected vertex-labelled simple graph — the unit
// of both datasets and queries. Construct one with a Builder or parse a
// collection with ParseGraphs.
type Graph = graph.Graph

// Label is a vertex label. The domain is application-defined; generators
// and parsers map label strings onto this compact type.
type Label = graph.Label

// Builder accumulates vertices and edges and validates them into a Graph.
// The zero value is ready to use.
type Builder = graph.Builder

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// ParseGraphs reads a graph collection in the gSpan-style text format used
// throughout the graph-query literature:
//
//	t # <id>
//	v <vertex> <label>
//	e <u> <v>
//
// Blank lines and lines starting with '#' are ignored.
func ParseGraphs(r io.Reader) ([]*Graph, error) { return graph.Parse(r) }

// ParseGraphsString is ParseGraphs over an in-memory string, convenient
// for tests and small examples.
func ParseGraphsString(s string) ([]*Graph, error) {
	return graph.Parse(strings.NewReader(s))
}

// WriteGraphs writes a graph collection in the same text format
// ParseGraphs reads.
func WriteGraphs(w io.Writer, graphs []*Graph) error { return graph.Write(w, graphs) }
