package graphcache

import (
	"graphcache/internal/core"
)

// Cache is a GraphCache instance in front of one Method. Create one with
// New; run queries with Query. A Cache is the system of the paper: the
// query-processing runtime (candidate-set pruning via cached answers,
// exact-match and empty-answer shortcuts) plus the cache manager (window-
// batched admission, replacement policies, statistics).
//
// Query is safe for any number of concurrent callers, and verification
// inside each query fans out over a worker pool sized by
// Options.VerifyConcurrency. The cached-query store is partitioned into
// Options.Shards feature-hash shards — disjoint index snapshots, window
// segments and statistics columns — while answers stay identical at any
// shard count; see the package documentation's Concurrency and Sharded
// store layout sections. QueryBatch processes many queries as one unit,
// amortising index probes, pool dispatches and statistics round-trips
// across the batch with answers identical to sequential Query calls —
// the primitive behind the serving subsystem's request coalescer (see
// Server).
//
// Cache contents persist across restarts through WriteSnapshot (call on
// shutdown) and ReadSnapshot (call on startup, over the same dataset) —
// the lifecycle of the paper's Cache stores (§6.1).
type Cache = core.Cache

// Options configures a Cache. The zero value gives the paper's default
// configuration: C = 100 cached queries, window W = 20, HD replacement,
// admission control disabled.
type Options = core.Options

// Result is a processed query's answer and statistics. Answer holds the
// sorted IDs of matching dataset graphs; Stats records where the time went
// and which cache mechanisms fired.
type Result = core.Result

// QueryStats describes how one query was processed: filtering and
// verification times, candidate-set sizes before and after pruning,
// sub-iso test counts, and which special cases (exact hit, empty-answer
// shortcut) applied.
type QueryStats = core.QueryStats

// Totals are cumulative counters over a Cache's lifetime: queries served,
// sub-iso tests run, hits by kind, time by stage, and maintenance work.
type Totals = core.Totals

// Observer receives a Cache's telemetry stream: one QueryObservation per
// processed query (per-stage timings, candidate counts, verifications
// saved, hit credit) and one WindowObservation per Window Manager pass.
// Install it via Options.Observer or Cache.SetObserver; the default nil
// observer costs one atomic load per query. The serving tier installs a
// metrics-backed observer automatically — see the package documentation's
// Telemetry section.
type Observer = core.Observer

// QueryObservation is one query's per-stage telemetry: feature
// extraction, index probe, GC confirmation, Method-M filter and
// verification durations (ns), candidate counts before and after
// pruning, verifications saved, estimated credit, and the special-case
// flags.
type QueryObservation = core.QueryObservation

// WindowObservation is one Window Manager pass: wall time plus the
// admission/eviction outcome.
type WindowObservation = core.WindowObservation

// PolicyKind selects a cache replacement policy.
type PolicyKind = core.PolicyKind

// The five replacement policies of §6.3. Each assigns cached queries a
// utility; the lowest-utility entries are evicted when the window's
// admitted queries need room.
const (
	// LRU evicts the least recently hit queries.
	LRU = core.LRU
	// POP ranks by popularity over age: H/A.
	POP = core.POP
	// PIN ranks by sub-iso tests alleviated over age: R/A.
	PIN = core.PIN
	// PINC ranks by estimated time saved over age: C/A.
	PINC = core.PINC
	// HD picks PIN when the R distribution has squared coefficient of
	// variation > 1, PINC otherwise — the paper's recommended default.
	HD = core.HD
)

// ParsePolicy maps a policy name ("lru", "pop", "pin", "pinc", "hd",
// case-insensitive) to its PolicyKind.
func ParsePolicy(name string) (PolicyKind, error) { return core.ParsePolicy(name) }

// MutationResult reports how Cache.ApplyMutation kept the cache sound
// across one dataset mutation: the epoch the dataset landed at, cached
// entries extended with newly matching graphs, entries exactly patched
// via the reverse index, entries re-verified after an edit, and entries
// invalidated outright. See the package documentation's "Dynamic
// datasets" section.
type MutationResult = core.MutationResult

// MutationObservation is one applied mutation's telemetry row, streamed
// to MutationObserver: op, epoch, wall time and the cache-maintenance
// counts of its MutationResult.
type MutationObservation = core.MutationObservation

// MutationObserver extends Observer with a mutation stream. An Observer
// that also implements MutationObserver (as the serving tier's
// metrics-backed observer does) receives one MutationObservation per
// Cache.ApplyMutation.
type MutationObserver = core.MutationObserver

// ErrStaticMethod is returned by Cache.ApplyMutation when the underlying
// Method does not implement DynamicMethod — its index cannot be
// maintained across dataset changes, so the mutation is refused before
// touching anything.
var ErrStaticMethod = core.ErrStaticMethod

// ErrDatasetMismatch is returned by Cache.ReadSnapshot when a snapshot's
// dataset fingerprint or epoch does not match the dataset the cache was
// built over; the snapshot file is quarantined to "<path>.mismatch"
// rather than silently ignored.
var ErrDatasetMismatch = core.ErrDatasetMismatch

// New creates a Cache in front of m. The method's Mode determines whether
// the cache serves subgraph or supergraph queries; the pruning rules
// invert automatically for the latter.
func New(m Method, opts Options) *Cache { return core.New(m, opts) }

// EstimateSubIsoCost is the paper's §5.2 cost model for one sub-iso test
// of an n-vertex query against an N-vertex dataset graph with L distinct
// labels: c = N·N! / (L^(n+1)·(N−n)!), computed in log space. PINC and HD
// use it to weigh alleviated tests; it is exported for applications that
// want the same yardstick.
func EstimateSubIsoCost(n, N, L int) float64 { return core.EstimateSubIsoCost(n, N, L) }
