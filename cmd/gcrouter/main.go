// Command gcrouter is the GraphCache serving-tier router: it fronts N
// running gcserved backends behind the same HTTP/JSON wire API, turning
// the single daemon into a horizontally scalable fleet.
//
//	gcserved -dataset aids.g -addr 127.0.0.1:7621 &
//	gcserved -dataset aids.g -addr 127.0.0.1:7622 &
//	gcrouter -backends 127.0.0.1:7621,127.0.0.1:7622 -mode replicate
//	gcquery  -server 127.0.0.1:7631 -queries queries.g
//
// Modes:
//
//	replicate  every backend holds a full cache; single queries follow
//	           feature-hash affinity (cache hits concentrate per replica)
//	           with a least-pending fallback, batches go whole to the
//	           least-pending backend
//	shard      queries are partitioned by feature hash, so the fleet's
//	           aggregate cache capacity is N caches with (near-)disjoint
//	           contents; batches are split per backend & scatter-gathered
//
// Load management (see the package documentation's "Load management"
// section): each backend has a circuit breaker — failed probes and
// dispatches count against an -error-budget over a sliding
// -breaker-window, an open breaker rests for -breaker-cooldown and then
// half-opens for probe dispatches that readmit or re-eject it — plus a
// bounded dispatch queue (-queue-bound, -queue-timeout) with
// backpressure. Failed dispatches are re-dispatched to other backends
// (answers are never lost to a single backend's death), and when
// fleet-wide admitted work crosses -shed-threshold the front door sheds
// with 429 + Retry-After. GET /stats reports fleet-wide aggregates,
// per-backend detail (breaker state and transition counters included)
// and the router's counters; GET /healthz is green while at least one
// backend is dispatchable.
//
// Single-query affinity rides a consistent-hash ring (virtual nodes per
// backend), so growing or shrinking the fleet remaps only ~1/N of the
// key space. With -admin-addr the router serves a topology admin API for
// doing exactly that at runtime:
//
//	POST   /backends         {"addr": "host:port"}  join: warm-then-serve
//	DELETE /backends/{addr}                         leave: drain-then-remove
//	GET    /topology                                the fleet as routed right now
//
// A joiner is health-checked, warmed from a healthy peer's snapshot
// (GET /snapshot → POST /warm), re-checked, and only then admitted to
// the ring — its first dispatch hits a warmed cache. A drained backend
// stops receiving dispatches immediately, finishes its in-flight work,
// and only then leaves the ring — zero failed requests either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphcache"
	"graphcache/internal/telemetry"
)

func main() {
	var (
		backends  = flag.String("backends", "", "comma-separated gcserved addresses (required)")
		modeNm    = flag.String("mode", "replicate", "routing mode: replicate or shard")
		addr      = flag.String("addr", "127.0.0.1:7631", "listen address (port 0 picks an ephemeral port)")
		probeIv   = flag.Duration("probe-interval", 500*time.Millisecond, "health-probe interval")
		probeTo   = flag.Duration("probe-timeout", 2*time.Second, "health-probe timeout")
		maxPathLn = flag.Int("max-path-len", 4, "feature length of the affinity hash (match the backends' GCindex)")

		queueBound   = flag.Int("queue-bound", 64, "per-backend dispatch slots before backpressure")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "max wait for a saturated backend's slot before failing over")
		errBudget    = flag.Float64("error-budget", 0.5, "failure fraction over -breaker-window that opens a backend's breaker")
		brWindow     = flag.Duration("breaker-window", 10*time.Second, "sliding window for the error budget")
		brCooldown   = flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before half-open probing")
		brMinSamples = flag.Int("breaker-min-samples", 5, "window samples required before the budget can open a breaker")
		shedThresh   = flag.Int("shed-threshold", 0, "fleet-wide admitted queries before 429 shedding (0 = 2 x queue-bound x backends)")
		adminAddr    = flag.String("admin-addr", "", "listen address for the topology admin API, /metrics and pprof (empty disables live join/drain)")
		logJSON      = flag.Bool("log-json", false, "emit structured logs as one-line JSON instead of text")
	)
	flag.Parse()

	logger := telemetry.NewLogger("gcrouter", *logJSON)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *backends == "" {
		flag.Usage()
		os.Exit(2)
	}
	mode, err := graphcache.ParseRouterMode(*modeNm)
	if err != nil {
		fatal(err.Error())
	}

	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	rt, err := graphcache.NewRouter(graphcache.RouterOptions{
		Addr:              *addr,
		Backends:          addrs,
		Mode:              mode,
		ProbeInterval:     *probeIv,
		ProbeTimeout:      *probeTo,
		MaxPathLen:        *maxPathLn,
		QueueBound:        *queueBound,
		QueueTimeout:      *queueTimeout,
		ErrorBudget:       *errBudget,
		BreakerWindow:     *brWindow,
		BreakerCooldown:   *brCooldown,
		BreakerMinSamples: *brMinSamples,
		ShedThreshold:     *shedThresh,
		AdminAddr:         *adminAddr,
		Logger:            logger,
	})
	if err != nil {
		fatal(err.Error())
	}
	if err := rt.Start(); err != nil {
		fatal(err.Error())
	}
	logger.Info("routing", "mode", mode.String(), "backends", len(addrs), "addr", rt.Addr())
	if a := rt.AdminAddr(); a != "" {
		logger.Info("admin API up", "addr", a,
			"endpoints", "POST /backends, DELETE /backends/{addr}, GET /topology, GET /metrics, /debug/pprof/")
	}

	// Serve until SIGTERM/SIGINT, then drain. The backends keep running —
	// they belong to their own daemons.
	errc := make(chan error, 1)
	go func() { errc <- rt.Serve() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		if err != nil {
			fatal(err.Error())
		}
		return
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		fatal(err.Error())
	}
	if err := <-errc; err != nil {
		fatal(err.Error())
	}
	c := rt.Counters()
	fmt.Fprintf(os.Stderr, "gcrouter: routed %d queries (%d retried, %d breaker opens, %d shed)\n",
		c.Routed, c.Retried, c.Ejected, c.Shed)
}
