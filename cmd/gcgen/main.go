// Command gcgen synthesises graph datasets and query workloads in the
// gSpan-style text format ("t # id" / "v id label" / "e u v") used by
// gcquery and by most tools in the graph-query literature.
//
// Generate a dataset:
//
//	gcgen dataset -name aids -count-factor 0.01 -o aids.g
//
// Generate a workload against a dataset:
//
//	gcgen workload -dataset aids.g -type ZZ -n 1000 -o queries.g
//	gcgen workload -dataset aids.g -type 20% -n 1000 -o queries.g
//
// Type A workloads are named by their sampling distributions ("UU", "ZU",
// "ZZ"); Type B workloads by their no-answer percentage ("0%", "20%",
// "50%"). All generation is deterministic given -seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"graphcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcgen: ")

	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "dataset":
		runDataset(os.Args[2:])
	case "workload":
		runWorkload(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gcgen dataset  -name {aids|pdbs|pcm|synthetic} [-count-factor F] [-size-factor F] [-seed N] -o FILE
  gcgen workload -dataset FILE -type {UU|ZU|ZZ|0%|20%|50%} [-n N] [-alpha A] [-sizes 4,8,12] [-seed N] -o FILE`)
}

func runDataset(args []string) {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	var (
		name        = fs.String("name", "", "dataset family: aids, pdbs, pcm or synthetic")
		countFactor = fs.Float64("count-factor", 1, "scale factor for the number of graphs")
		sizeFactor  = fs.Float64("size-factor", 1, "scale factor for graph sizes")
		seed        = fs.Int64("seed", 1, "RNG seed")
		out         = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)

	var ds *graphcache.Dataset
	switch strings.ToLower(*name) {
	case "aids":
		ds = graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(*countFactor, *sizeFactor), *seed)
	case "pdbs":
		ds = graphcache.PDBSLike(graphcache.DefaultPDBS().Scaled(*countFactor, *sizeFactor), *seed)
	case "pcm":
		ds = graphcache.PCMLike(graphcache.DefaultPCM().Scaled(*countFactor, *sizeFactor), *seed)
	case "synthetic":
		ds = graphcache.SyntheticLike(graphcache.DefaultSynthetic().Scaled(*countFactor, *sizeFactor), *seed)
	default:
		log.Fatalf("unknown dataset family %q (want aids, pdbs, pcm or synthetic)", *name)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer mustClose(f)
		w = f
	}
	if err := graphcache.WriteGraphs(w, ds.Graphs()); err != nil {
		log.Fatal(err)
	}
	st := ds.ComputeStats()
	log.Printf("wrote %d graphs (avg %.1f vertices, %.1f edges, avg degree %.2f, %d labels)",
		ds.Len(), st.AvgVertices, st.AvgEdges, st.AvgDegree, st.DistinctLabels)
}

func runWorkload(args []string) {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	var (
		dsFile = fs.String("dataset", "", "dataset file to extract queries from")
		typ    = fs.String("type", "ZZ", "workload category: UU, ZU, ZZ (Type A) or 0%, 20%, 50% (Type B)")
		n      = fs.Int("n", 1000, "number of queries")
		alpha  = fs.Float64("alpha", 1.4, "Zipf skew")
		sizes  = fs.String("sizes", "", "comma-separated query sizes in edges (default per paper: 4,8,12,16,20)")
		pool   = fs.Int("pool", 200, "Type B answerable pool size per query size")
		npool  = fs.Int("npool", 60, "Type B no-answer pool size per query size")
		seed   = fs.Int64("seed", 1, "RNG seed")
		out    = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)

	if *dsFile == "" {
		log.Fatal("-dataset is required")
	}
	f, err := os.Open(*dsFile)
	if err != nil {
		log.Fatal(err)
	}
	gs, err := graphcache.ParseGraphs(f)
	mustClose(f)
	if err != nil {
		log.Fatalf("parsing %s: %v", *dsFile, err)
	}
	ds := graphcache.NewDataset(gs)

	szs := []int{4, 8, 12, 16, 20}
	if *sizes != "" {
		szs = nil
		for _, s := range strings.Split(*sizes, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil || v <= 0 {
				log.Fatalf("bad -sizes entry %q", s)
			}
			szs = append(szs, v)
		}
	}

	var qs []graphcache.Query
	switch strings.ToUpper(*typ) {
	case "UU", "ZU", "ZZ":
		cfg, err := graphcache.TypeACategory(strings.ToUpper(*typ), *alpha, szs, *n)
		if err != nil {
			log.Fatal(err)
		}
		qs = graphcache.TypeA(ds, cfg, *seed)
	case "0%", "20%", "50%":
		var p float64
		fmt.Sscanf(*typ, "%f%%", &p)
		pools := graphcache.BuildTypeBPools(ds, graphcache.TypeBConfig{
			AnswerPoolPerSize:   *pool,
			NoAnswerPoolPerSize: *npool,
			Sizes:               szs,
		}, *seed)
		qs = pools.Workload(graphcache.TypeBWorkloadConfig{
			NoAnswerProb: p / 100, Alpha: *alpha, NumQueries: *n,
		}, *seed+1)
	default:
		log.Fatalf("unknown workload type %q", *typ)
	}

	queryGraphs := make([]*graphcache.Graph, len(qs))
	for i, q := range qs {
		q.Graph.SetID(int32(i))
		queryGraphs[i] = q.Graph
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer mustClose(f)
		w = f
	}
	if err := graphcache.WriteGraphs(w, queryGraphs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d queries (%s over %d dataset graphs)", len(qs), *typ, ds.Len())
}

func mustClose(f *os.File) {
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
