// Command gcbench regenerates the tables and figures of the GraphCache
// paper's evaluation (§7) at a configurable scale.
//
// Usage:
//
//	gcbench -experiment fig5                # one experiment
//	gcbench -experiment all                 # every experiment
//	gcbench -list                           # enumerate experiments
//	gcbench -experiment fig8 -queries 2000 -count-factor 0.05
//
// Each experiment prints a grid shaped like the paper's figure: one row
// per configuration, one cell per workload category. Absolute numbers
// depend on the machine and the scaled-down synthetic datasets; the shape
// (who wins, by roughly what factor) is the reproduction target — see
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"graphcache/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcbench: ")

	var (
		experiment = flag.String("experiment", "", "experiment id (see -list) or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		markdown   = flag.Bool("markdown", false, "emit tables as Markdown")
		out        = flag.String("o", "", "write output to file instead of stdout")
		verbose    = flag.Bool("v", false, "log progress to stderr")

		countFactor  = flag.Float64("count-factor", 0, "scale factor for graphs per dataset (0 = default small scale)")
		sizeFactor   = flag.Float64("size-factor", 0, "scale factor for graph sizes (0 = default)")
		queries      = flag.Int("queries", 0, "workload length for AIDS/PDBS experiments (0 = default)")
		denseQueries = flag.Int("dense-queries", 0, "workload length for PCM/Synthetic experiments (0 = default)")
		answerPool   = flag.Int("answer-pool", 0, "Type B answerable pool size per query size (0 = default)")
		noAnswerPool = flag.Int("noanswer-pool", 0, "Type B no-answer pool size per query size (0 = default)")
		seed         = flag.Int64("seed", 0, "RNG seed deriving every random choice (0 = default)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" {
		flag.Usage()
		os.Exit(2)
	}

	sc := bench.SmallScale()
	if *countFactor > 0 {
		sc.CountFactor = *countFactor
	}
	if *sizeFactor > 0 {
		sc.SizeFactor = *sizeFactor
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *denseQueries > 0 {
		sc.DenseQueries = *denseQueries
	}
	if *answerPool > 0 {
		sc.AnswerPool = *answerPool
	}
	if *noAnswerPool > 0 {
		sc.NoAnswerPool = *noAnswerPool
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	if *verbose {
		bench.Logf = func(format string, args ...any) {
			log.Printf(format, args...)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	ids := strings.Split(*experiment, ",")
	env := bench.NewEnv(sc)
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		var tables []*bench.Table
		if id == "all" {
			tables = bench.RunAll(env)
		} else {
			e, ok := bench.ExperimentByID(id)
			if !ok {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			tables = e.Run(env)
		}
		for _, t := range tables {
			if *markdown {
				t.FormatMarkdown(w)
			} else {
				t.Format(w)
			}
			fmt.Fprintln(w)
		}
	}
	if *verbose {
		log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
	}
}
