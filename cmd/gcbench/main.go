// Command gcbench regenerates the tables and figures of the GraphCache
// paper's evaluation (§7) at a configurable scale.
//
// Usage:
//
//	gcbench -experiment fig5                # one experiment
//	gcbench -experiment all                 # every experiment
//	gcbench -list                           # enumerate experiments
//	gcbench -experiment fig8 -queries 2000 -count-factor 0.05
//	gcbench -parallel 8                     # multi-caller throughput probe
//	gcbench -parallel 8 -dataset PDBS -method ggsx -workload ZZ
//	gcbench -parallel 8 -shards 1           # unsharded store, for comparison
//	gcbench -probe-json BENCH_probe.json    # GCindex probe microbenchmark
//	gcbench -wire both                      # text vs binary wire codec
//	gcbench -wire-json BENCH_wire.json      # ... recorded as JSON
//
// The -parallel N mode drives one shared cache from 1, 2, 4, … up to N
// concurrent caller goroutines and reports queries/sec per degree — the
// concurrent query engine's headline metric. It is independent of
// -experiment. -shards sets the cached-query store's partition count
// (default: next power of two >= GOMAXPROCS); comparing -shards 1 against
// the default isolates the sharded layout's contribution.
//
// The -probe-json FILE mode warms a cache with the selected workload,
// measures the GCindex candidate probe (ns, allocs and candidates per
// probe) plus the steady-state cached-query latency, and writes the
// summary as JSON — CI stores it as BENCH_probe.json so the probe path's
// perf trajectory is recorded run over run.
//
// The -wire text|binary|both mode benchmarks the wire codecs over the
// selected workload — request and batch-result payload sizes plus
// encode/decode ns per graph — and -wire-json FILE records the full
// text-vs-binary comparison as JSON (BENCH_wire.json in CI).
//
// Each experiment prints a grid shaped like the paper's figure: one row
// per configuration, one cell per workload category. Absolute numbers
// depend on the machine and the scaled-down synthetic datasets; the shape
// (who wins, by roughly what factor) is the reproduction target — see
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"slices"
	"strings"
	"time"

	"graphcache/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcbench: ")

	var (
		experiment = flag.String("experiment", "", "experiment id (see -list) or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		markdown   = flag.Bool("markdown", false, "emit tables as Markdown")
		out        = flag.String("o", "", "write output to file instead of stdout")
		verbose    = flag.Bool("v", false, "log progress to stderr")

		parallel   = flag.Int("parallel", 0, "run the multi-caller throughput probe with up to N concurrent callers")
		probeJSON  = flag.String("probe-json", "", "measure the GCindex candidate probe on a warmed cache and write a JSON summary (e.g. BENCH_probe.json) to this file")
		wire       = flag.String("wire", "", "benchmark the wire codecs over the selected workload and print the comparison: text, binary, or both")
		wireJSON   = flag.String("wire-json", "", "run the wire-codec benchmark and write a JSON summary (e.g. BENCH_wire.json) to this file")
		shards     = flag.Int("shards", 0, "cached-query store shard count for -parallel/-probe-json (0 = next power of two >= GOMAXPROCS)")
		dataset    = flag.String("dataset", "AIDS", "dataset for -parallel/-probe-json (AIDS, PDBS, PCM, Synthetic)")
		methodName = flag.String("method", "ggsx", "Method M for -parallel/-probe-json (ggsx, grapes1, grapes6, ctindex, vf2, vf2+, gql)")
		workload   = flag.String("workload", "ZZ", "workload label for -parallel/-probe-json (ZZ, ZU, UU, 0%, 20%, 50%)")

		countFactor  = flag.Float64("count-factor", 0, "scale factor for graphs per dataset (0 = default small scale)")
		sizeFactor   = flag.Float64("size-factor", 0, "scale factor for graph sizes (0 = default)")
		queries      = flag.Int("queries", 0, "workload length for AIDS/PDBS experiments (0 = default)")
		denseQueries = flag.Int("dense-queries", 0, "workload length for PCM/Synthetic experiments (0 = default)")
		answerPool   = flag.Int("answer-pool", 0, "Type B answerable pool size per query size (0 = default)")
		noAnswerPool = flag.Int("noanswer-pool", 0, "Type B no-answer pool size per query size (0 = default)")
		seed         = flag.Int64("seed", 0, "RNG seed deriving every random choice (0 = default)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" && *parallel <= 0 && *probeJSON == "" && *wire == "" && *wireJSON == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *wire != "" && *wire != "text" && *wire != "binary" && *wire != "both" {
		log.Fatalf("unknown -wire %q (want text, binary or both)", *wire)
	}

	sc := bench.SmallScale()
	if *countFactor > 0 {
		sc.CountFactor = *countFactor
	}
	if *sizeFactor > 0 {
		sc.SizeFactor = *sizeFactor
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *denseQueries > 0 {
		sc.DenseQueries = *denseQueries
	}
	if *answerPool > 0 {
		sc.AnswerPool = *answerPool
	}
	if *noAnswerPool > 0 {
		sc.NoAnswerPool = *noAnswerPool
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	if *verbose {
		bench.Logf = func(format string, args ...any) {
			log.Printf(format, args...)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	env := bench.NewEnv(sc)

	// -probe-json, -wire/-wire-json and -parallel read the same
	// dataset/method/workload flags; validate them once for whichever
	// modes are active.
	if *probeJSON != "" || *parallel > 0 || *wire != "" || *wireJSON != "" {
		if !slices.Contains(bench.DatasetNames(), *dataset) {
			log.Fatalf("unknown dataset %q (want one of %s)", *dataset, strings.Join(bench.DatasetNames(), ", "))
		}
		if !slices.Contains(bench.MethodNames(), *methodName) {
			log.Fatalf("unknown method %q (want one of %s)", *methodName, strings.Join(bench.MethodNames(), ", "))
		}
		if !slices.Contains(bench.AllWorkloadLabels(), *workload) {
			log.Fatalf("unknown workload %q (want one of %s)", *workload, strings.Join(bench.AllWorkloadLabels(), ", "))
		}
	}

	if *wire != "" || *wireJSON != "" {
		sum := bench.WireBench(env, *dataset, *methodName, *workload)
		printWire := func(name string, st bench.WireCodecStats) {
			fmt.Fprintf(w, "%-6s request %7d B  results %7d B  encode %8.0f ns/graph  decode %8.0f ns/graph\n",
				name, st.RequestBytes, st.ResultBytes, st.EncodeNsPerGraph, st.DecodeNsPerGraph)
		}
		fmt.Fprintf(w, "wire codecs: %s %s %s, %d query graphs\n", *dataset, *methodName, *workload, sum.Graphs)
		if *wire == "" || *wire == "text" || *wire == "both" {
			printWire("text", sum.Text)
		}
		if *wire == "" || *wire == "binary" || *wire == "both" {
			printWire("binary", sum.Binary)
		}
		if *wire == "" || *wire == "both" {
			fmt.Fprintf(w, "binary/text size: %.2fx requests, %.2fx results\n", sum.RequestRatio, sum.ResultRatio)
		}
		if *wireJSON != "" {
			f, err := os.Create(*wireJSON)
			if err != nil {
				log.Fatal(err)
			}
			if err := sum.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wire summary → %s", *wireJSON)
		}
		if *experiment == "" && *parallel <= 0 && *probeJSON == "" {
			return
		}
	}

	if *probeJSON != "" {
		sum := bench.ProbeBench(env, *dataset, *methodName, *workload, *shards)
		f, err := os.Create(*probeJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := sum.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("probe summary: %.0f ns/probe, %.2f allocs/probe over %d cached queries → %s",
			sum.NsPerProbe, sum.AllocsPerProbe, sum.CachedQueries, *probeJSON)
		if *experiment == "" && *parallel <= 0 {
			return
		}
	}

	if *parallel > 0 {
		degrees := []int{1}
		for d := 2; d < *parallel; d *= 2 {
			degrees = append(degrees, d)
		}
		if *parallel > 1 {
			degrees = append(degrees, *parallel)
		}
		t := bench.Throughput(env, *dataset, *methodName, *workload, degrees, *shards)
		if *markdown {
			t.FormatMarkdown(w)
		} else {
			t.Format(w)
		}
		fmt.Fprintln(w)
		if *experiment == "" {
			return
		}
	}

	ids := strings.Split(*experiment, ",")
	start := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		var tables []*bench.Table
		if id == "all" {
			tables = bench.RunAll(env)
		} else {
			e, ok := bench.ExperimentByID(id)
			if !ok {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			tables = e.Run(env)
		}
		for _, t := range tables {
			if *markdown {
				t.FormatMarkdown(w)
			} else {
				t.Format(w)
			}
			fmt.Fprintln(w)
		}
	}
	if *verbose {
		log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
	}
}
