// Command gcfault is the GraphCache chaos proxy: it sits between a
// gcrouter and one gcserved backend and injects faults — 503 replies,
// added latency, severed connections, or a full blackhole — so load
// management (circuit breakers, bounded queues, shedding) can be
// drilled against a misbehaving backend without patching the backend.
//
//	gcserved -dataset aids.g -addr 127.0.0.1:7621 &
//	gcfault  -listen 127.0.0.1:7721 -target 127.0.0.1:7621 -drop-rate 0.5 &
//	gcrouter -backends 127.0.0.1:7622,127.0.0.1:7721 ...
//
// Fault knobs are runtime-adjustable over the proxy's own /_chaos
// endpoint (GET reads knobs and counters, POST updates any subset):
//
//	curl -X POST -d '{"drop_rate":0}' http://127.0.0.1:7721/_chaos
//
// The -seed flag fixes the fault stream, so a drill is reproducible.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphcache/internal/faultproxy"
	"graphcache/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7721", "listen address (port 0 picks an ephemeral port)")
		target    = flag.String("target", "", "backend address to front (required)")
		errorRate = flag.Float64("error-rate", 0, "fraction of requests answered with an injected 503")
		dropRate  = flag.Float64("drop-rate", 0, "fraction of requests whose connection is severed")
		latency   = flag.Duration("latency", 0, "delay injected before every request")
		blackhole = flag.Bool("blackhole", false, "swallow every request until the client gives up")
		seed      = flag.Int64("seed", 1, "fault-stream seed (reproducible drills)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as one-line JSON instead of text")
	)
	flag.Parse()

	logger := telemetry.NewLogger("gcfault", *logJSON)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *target == "" {
		flag.Usage()
		os.Exit(2)
	}

	p := faultproxy.New(*target, *seed)
	p.SetErrorRate(*errorRate)
	p.SetDropRate(*dropRate)
	p.SetLatency(*latency)
	p.SetBlackhole(*blackhole)

	if err := p.Start(*listen); err != nil {
		fatal(err.Error())
	}
	logger.Info("fronting", "target", *target, "addr", p.Addr(),
		"error_rate", *errorRate, "drop_rate", *dropRate, "latency", *latency, "blackhole", *blackhole)

	errc := make(chan error, 1)
	go func() { errc <- p.Serve() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		if err != nil {
			fatal(err.Error())
		}
		return
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	}
	// Blackholed connections never finish draining; a short grace period
	// is all a chaos proxy owes its clients.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		fatal(err.Error())
	}
	<-errc
	c := p.Counts()
	fmt.Fprintf(os.Stderr, "gcfault: forwarded %d, errored %d, dropped %d, blackholed %d\n",
		c.Forwarded, c.Errored, c.Dropped, c.Blackholed)
}
