// Command gcserved is the GraphCache network daemon: it builds a
// query-processing method over a dataset, wraps it in GraphCache, and
// serves queries over an HTTP/JSON API — the paper's caching *system* as
// a standalone service any client, Go or not, can query.
//
//	gcserved -dataset aids.g -method ggsx -addr 127.0.0.1:7621
//	gcserved -dataset aids.g -method vf2plus -cache-size 500 \
//	         -snapshot aids.gcsnapshot
//
// Endpoints (JSON envelopes around the t/v/e graph text format):
//
//	POST /query       {"graph": "t # 0\nv 0 1\n..."}  one query (?debug=trace adds a span breakdown)
//	POST /querybatch  {"graphs": "..."}               a batch, answered by one QueryBatch
//	POST /mutate      {"op": "add|remove|edit", ...}  one live dataset mutation
//	GET  /stats       lifetime totals and serving summary
//	GET  /metrics     Prometheus text exposition (stage histograms, hit/shed counters)
//	GET  /healthz     liveness probe (503 while warming; X-GC-Epoch carries the dataset epoch)
//	GET  /snapshot    stream the live cache as a checksummed snapshot
//	POST /warm        {"from": "host:port"}  replace the cache with a peer's snapshot
//
// Logs are structured (log/slog); -log-json switches them to one-line
// JSON, -log-every N samples a per-query latency line, and -pprof adds
// net/http/pprof under /debug/pprof/.
//
// Concurrently-arriving single queries are coalesced into batched
// Cache.QueryBatch executions (bounded by -max-batch and -max-delay).
// With -snapshot, cache contents are loaded on start and written back on
// SIGTERM/SIGINT via graceful shutdown — the Cache Manager lifecycle of
// the paper; a corrupt or truncated snapshot file is quarantined to
// <path>.corrupt and the daemon starts cold. Add -snapshot-interval to
// also write the file periodically, bounding a crash's loss to one
// interval, and -warm-from PEER to start from a running peer's cache
// instead of cold — the snapshot-shipping join used by gcrouter's admin
// API. Query it from Go with graphcache.NewServerClient or from the
// command line with `gcquery -server ADDR`.
//
// POST /mutate applies live dataset mutations — graph additions,
// removals and edge edits — with the cache kept sound in place (see the
// graphcache package documentation's "Dynamic datasets" section). With
// -journal, every mutation is appended and fsynced to a write-ahead log
// *before* it is acknowledged, so a crash — even kill -9 — loses no
// acked mutation: on restart the journal replays on top of the snapshot
// (whose header records the dataset epoch), and the journal is
// truncated whenever a snapshot makes its prefix redundant. Submit
// mutations with `gcquery -server ADDR -mutate-op ...` or through a
// fronting gcrouter, which fans them to every backend.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphcache"
	"graphcache/internal/telemetry"
)

func main() {
	var (
		dsFile    = flag.String("dataset", "", "dataset file in t/v/e format (required)")
		methodNm  = flag.String("method", "ggsx", "method: ggsx, grapes1, grapes6, ctindex, vf2, vf2plus, graphql, ullmann")
		addr      = flag.String("addr", "127.0.0.1:7621", "listen address (port 0 picks an ephemeral port)")
		snapshot  = flag.String("snapshot", "", "snapshot file: loaded on start if present, written on shutdown")
		journal   = flag.String("journal", "", "mutation write-ahead log: fsynced before each /mutate ack, replayed over the snapshot on start")
		cacheSize = flag.Int("cache-size", 100, "cache capacity C in queries")
		window    = flag.Int("window", 20, "window size W in queries")
		policy    = flag.String("policy", "hd", "replacement policy: lru, pop, pin, pinc, hd")
		admission = flag.Float64("admission", 0, "admission-control fraction (0 disables)")
		shards    = flag.Int("shards", 0, "cached-query store shards (0 = next power of two >= GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 64, "request coalescer: max queries per batch (1 disables coalescing)")
		maxDelay  = flag.Duration("max-delay", graphcache.DefaultCoalesceDelay, "request coalescer: max wait for a batch to fill")
		shedAt    = flag.Int("shed-threshold", 0, "queries admitted concurrently before 429 shedding (0 disables; a fronting gcrouter usually owns shedding)")
		snapIv    = flag.Duration("snapshot-interval", 0, "also write -snapshot periodically, bounding crash loss to one interval (0 = shutdown-only)")
		warmFrom  = flag.String("warm-from", "", "warm the cache from this peer's GET /snapshot before serving (overrides a local -snapshot load)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as one-line JSON instead of text")
		logEvery  = flag.Int("log-every", 0, "log every Nth served query with its request id and stage timings (0 disables)")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the query listener")
	)
	flag.Parse()

	logger := telemetry.NewLogger("gcserved", *logJSON)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *dsFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	pol, err := graphcache.ParsePolicy(*policy)
	if err != nil {
		fatal(err.Error())
	}

	f, err := os.Open(*dsFile)
	if err != nil {
		fatal(err.Error())
	}
	graphs, err := graphcache.ParseGraphs(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fatal("parsing dataset", "file", *dsFile, "err", err)
	}
	ds := graphcache.NewDataset(graphs)
	logger.Info("dataset loaded", "graphs", ds.Len(), "file", *dsFile)

	m, err := graphcache.NewMethodByName(*methodNm, ds)
	if err != nil {
		fatal(err.Error())
	}
	gc := graphcache.New(m, graphcache.Options{
		CacheSize:         *cacheSize,
		WindowSize:        *window,
		Policy:            pol,
		AdmissionFraction: *admission,
		Shards:            *shards,
		// Maintenance off the query path, as in the paper's architecture.
		AsyncRebuild: true,
	})

	srv := graphcache.NewServer(gc, graphcache.ServerOptions{
		Addr:             *addr,
		SnapshotPath:     *snapshot,
		JournalPath:      *journal,
		SnapshotInterval: *snapIv,
		MaxBatch:         *maxBatch,
		MaxDelay:         *maxDelay,
		ShedThreshold:    *shedAt,
		Logger:           logger,
		LogEvery:         *logEvery,
		EnablePprof:      *pprofOn,
	})
	if err := srv.Start(); err != nil {
		fatal(err.Error())
	}
	if *snapshot != "" {
		logger.Info("snapshot restored", "file", *snapshot, "cached", len(gc.CachedSerials()))
	}
	if *warmFrom != "" {
		wctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		warm, err := srv.WarmFrom(wctx, *warmFrom)
		cancel()
		if err != nil {
			fatal("warm-up failed", "from", *warmFrom, "err", err)
		}
		logger.Info("warmed from peer", "from", warm.From, "cached", warm.Cached)
	}
	logger.Info("serving", "method", m.Name(), "mode", m.Mode(), "addr", srv.Addr(), "pprof", *pprofOn)

	// Serve until SIGTERM/SIGINT, then drain and write the snapshot.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		if err != nil {
			fatal(err.Error())
		}
		return
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err.Error())
	}
	if err := <-errc; err != nil {
		fatal(err.Error())
	}
	if *snapshot != "" {
		logger.Info("snapshot written", "file", *snapshot, "cached", len(gc.CachedSerials()))
	}
	tot := gc.Totals()
	fmt.Fprintf(os.Stderr, "gcserved: served %d queries (%d batches, %d exact hits, %d empty shortcuts)\n",
		tot.Queries, tot.Batches, tot.ExactHits, tot.EmptyShortcuts)
}
