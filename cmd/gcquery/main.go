// Command gcquery answers graph queries from the command line: it loads a
// dataset, builds a query-processing method, optionally wraps it in
// GraphCache, and streams the answers and a performance summary.
//
//	gcquery -dataset aids.g -queries queries.g -method ggsx
//	gcquery -dataset aids.g -queries queries.g -method vf2plus -cache \
//	        -cache-size 100 -window 20 -policy hd -admission 0.25
//	gcquery -server 127.0.0.1:7621 -queries queries.g
//
// With -compare, each workload runs twice — bare method, then method
// behind GraphCache — and the tool reports the speedup, reproducing the
// paper's measurement loop on your own data.
//
// With -server ADDR, no local dataset or cache is built: the queries are
// sent to a running gcserved at ADDR and answered from its cache.
// -wire binary switches the request/response payloads to the compact
// binary codec (answers are identical), and -stream sends the whole
// workload as one /querybatch NDJSON stream, printing each answer as its
// verification completes — add -stream-arrival for completion order, or
// -stream-cancel-after N to walk away mid-batch (the server then
// abandons the remaining verification work):
//
//	gcquery -server ADDR -queries queries.g -wire binary
//	gcquery -server ADDR -queries queries.g -stream
//	gcquery -server ADDR -queries queries.g -stream -stream-cancel-after 1
//
// With -server and -mutate-op, the tool submits a live dataset mutation
// instead of queries — to one gcserved, or to a gcrouter which fans it
// to every backend:
//
//	gcquery -server ADDR -mutate-op add -mutate-file new.g
//	gcquery -server ADDR -mutate-op remove -mutate-ids 3,17
//	gcquery -server ADDR -mutate-op edit -mutate-ids 3 -mutate-file replacement.g
//
// Add -mutate-seq N to replay a known fleet sequence number
// idempotently (an already-applied seq acks without re-applying). The
// reply's dataset epoch, consumed seq and cache-maintenance counts are
// printed.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcquery: ")

	var (
		dsFile    = flag.String("dataset", "", "dataset file (required)")
		qFile     = flag.String("queries", "", "query workload file (required)")
		methodNm  = flag.String("method", "ggsx", "method: ggsx, grapes1, grapes6, ctindex, vf2, vf2plus, graphql, ullmann")
		useCache  = flag.Bool("cache", false, "wrap the method in GraphCache")
		compare   = flag.Bool("compare", false, "run both bare and cached, report speedups")
		cacheSize = flag.Int("cache-size", 100, "cache capacity C in queries")
		window    = flag.Int("window", 20, "window size W in queries")
		policy    = flag.String("policy", "hd", "replacement policy: lru, pop, pin, pinc, hd")
		admission = flag.Float64("admission", 0, "admission-control fraction (0 disables)")
		quiet     = flag.Bool("quiet", false, "suppress per-query answer lines")
		loadCache = flag.String("load-cache", "", "restore cache contents from a snapshot file before querying")
		saveCache = flag.String("save-cache", "", "write cache contents to a snapshot file after querying")
		serverAd  = flag.String("server", "", "send queries to a running gcserved at this address instead of building a local cache")
		batchSize = flag.Int("batch", 0, "with -server: send queries in batches of this size (0 = one at a time)")
		retries   = flag.Int("retries", 2, "with -server: max retries per request on refusals and transport errors")
		timeout   = flag.Duration("timeout", 0, "with -server: per-attempt request timeout (0 = client default)")
		wire      = flag.String("wire", "text", "with -server: wire format for queries (text or binary); answers are identical")
		stream    = flag.Bool("stream", false, "with -server: stream the whole workload through one /querybatch NDJSON stream, printing each answer as it lands")
		streamArr = flag.Bool("stream-arrival", false, "with -stream: deliver results in completion order (tagged q<index>) instead of request order")
		cancelAft = flag.Int("stream-cancel-after", 0, "with -stream: walk away after N results — the server abandons the batch's remaining verification")
		mutOp     = flag.String("mutate-op", "", "with -server: submit a dataset mutation instead of queries (add, remove, edit)")
		mutIDs    = flag.String("mutate-ids", "", "with -mutate-op remove/edit: comma-separated dataset graph IDs")
		mutFile   = flag.String("mutate-file", "", "with -mutate-op add/edit: graphs in t/v/e format to add, or the edit's replacement graph")
		mutSeq    = flag.Int64("mutate-seq", 0, "with -mutate-op: sequence number for idempotent replay (0 = assign)")
	)
	flag.Parse()

	if *wire != "text" && *wire != "binary" {
		log.Fatalf("unknown -wire %q (want text or binary)", *wire)
	}
	if *serverAd != "" {
		if *mutOp != "" {
			runMutate(*serverAd, *mutOp, *mutIDs, *mutFile, *mutSeq, *retries, *timeout)
			return
		}
		if *qFile == "" {
			flag.Usage()
			os.Exit(2)
		}
		sopts := serveOpts{
			batchSize: *batchSize, retries: *retries, timeout: *timeout,
			quiet: *quiet, binary: *wire == "binary",
			stream: *stream, arrival: *streamArr, cancelAfter: *cancelAft,
		}
		runServer(*serverAd, *qFile, sopts)
		return
	}

	if *dsFile == "" || *qFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds := loadDataset(*dsFile)
	queries := loadGraphs(*qFile)
	log.Printf("dataset: %d graphs; workload: %d queries", ds.Len(), len(queries))

	pol, err := graphcache.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	opts := graphcache.Options{
		CacheSize:         *cacheSize,
		WindowSize:        *window,
		Policy:            pol,
		AdmissionFraction: *admission,
		// Cache maintenance runs off the query path, as in the paper's
		// architecture; queries keep being served from the old index
		// while the new one is built.
		AsyncRebuild: true,
	}

	m := buildMethod(*methodNm, ds)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *compare {
		runCompare(out, m, opts, queries)
		return
	}

	if *useCache {
		gc := graphcache.New(m, opts)
		if *loadCache != "" {
			f, err := os.Open(*loadCache)
			if err != nil {
				log.Fatal(err)
			}
			err = gc.ReadSnapshot(bufio.NewReader(f))
			mustCloseFile(f)
			if err != nil {
				log.Fatalf("loading cache snapshot: %v", err)
			}
			log.Printf("restored %d cached queries from %s", len(gc.CachedSerials()), *loadCache)
		}
		start := time.Now()
		for i, q := range queries {
			res := gc.Query(q)
			if !*quiet {
				fmt.Fprintf(out, "q%d: %d answers %v\n", i, len(res.Answer), res.Answer)
			}
		}
		elapsed := time.Since(start)
		tot := gc.Totals()
		fmt.Fprintf(out, "\n%d queries in %v (%.2f ms/query)\n",
			tot.Queries, elapsed.Round(time.Millisecond), msPer(elapsed, len(queries)))
		fmt.Fprintf(out, "sub-iso tests: %d; exact hits: %d; empty shortcuts: %d; container hits: %d; containee hits: %d\n",
			tot.SubIsoTests, tot.ExactHits, tot.EmptyShortcuts, tot.ContainerHits, tot.ContaineeHits)
		fmt.Fprintf(out, "maintenance time (off the query path): %v\n", tot.MaintenanceTime.Round(time.Microsecond))
		if *saveCache != "" {
			gc.Flush()
			f, err := os.Create(*saveCache)
			if err != nil {
				log.Fatal(err)
			}
			err = gc.WriteSnapshot(f)
			mustCloseFile(f)
			if err != nil {
				log.Fatalf("saving cache snapshot: %v", err)
			}
			log.Printf("saved %d cached queries to %s", len(gc.CachedSerials()), *saveCache)
		}
		return
	}

	start := time.Now()
	tests := 0
	for i, q := range queries {
		ans := graphcache.Answer(m, q)
		tests += len(m.Filter(q))
		if !*quiet {
			fmt.Fprintf(out, "q%d: %d answers %v\n", i, len(ans), ans)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "\n%d queries in %v (%.2f ms/query), %d sub-iso tests\n",
		len(queries), elapsed.Round(time.Millisecond), msPer(elapsed, len(queries)), tests)
}

// serveOpts collects the -server query mode's knobs: batching, retry
// policy, the negotiated wire format and the streaming controls.
type serveOpts struct {
	batchSize   int
	retries     int
	timeout     time.Duration
	quiet       bool
	binary      bool
	stream      bool
	arrival     bool
	cancelAfter int
}

// runServer is the -server mode: send the workload to a running gcserved
// (or gcrouter) and report its serving statistics — no local dataset,
// method or cache is built. Refused requests (429/503 from an overloaded
// or breaker-guarded serving tier) and transport errors are retried with
// backoff up to -retries times; streamed batches are never retried.
func runServer(addr, qFile string, so serveOpts) {
	queries := loadGraphs(qFile)
	cl := graphcache.NewServerClientWith(addr, graphcache.ServerClientOptions{
		MaxRetries:     so.retries,
		RequestTimeout: so.timeout,
		WireBinary:     so.binary,
	})
	ctx := context.Background()
	if err := cl.Healthz(ctx); err != nil {
		log.Fatalf("server %s not healthy: %v", addr, err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	start := time.Now()
	if so.stream {
		stop := errors.New("walked away")
		delivered := 0
		err := cl.QueryBatchStream(ctx, queries, so.arrival, func(sr graphcache.ServerStreamResult) error {
			if !so.quiet {
				fmt.Fprintf(out, "q%d: %d answers %v\n", sr.Index, len(sr.Answer), sr.Answer)
			}
			delivered++
			if so.cancelAfter > 0 && delivered >= so.cancelAfter {
				return stop
			}
			return nil
		})
		if errors.Is(err, stop) {
			fmt.Fprintf(out, "\nwalked away after %d of %d streamed results; the server abandons the rest\n",
				delivered, len(queries))
			return
		}
		if err != nil {
			log.Fatalf("streamed batch: %v", err)
		}
	} else if so.batchSize > 1 {
		for i := 0; i < len(queries); i += so.batchSize {
			end := i + so.batchSize
			if end > len(queries) {
				end = len(queries)
			}
			results, err := cl.QueryBatch(ctx, queries[i:end])
			if err != nil {
				log.Fatalf("batch starting at query %d: %v", i, err)
			}
			if !so.quiet {
				for k, res := range results {
					fmt.Fprintf(out, "q%d: %d answers %v\n", i+k, len(res.Answer), res.Answer)
				}
			}
		}
	} else {
		for i, q := range queries {
			res, err := cl.Query(ctx, q)
			if err != nil {
				log.Fatalf("query %d: %v", i, err)
			}
			if !so.quiet {
				fmt.Fprintf(out, "q%d: %d answers %v\n", i, len(res.Answer), res.Answer)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "\n%d queries served by %s in %v (%.2f ms/query)\n",
		len(queries), addr, elapsed.Round(time.Millisecond), msPer(elapsed, len(queries)))
	if st, err := cl.Stats(ctx); err == nil {
		fmt.Fprintf(out, "server lifetime: %d queries, %d batches, %d cached, %d sub-iso tests, %d exact hits, %d empty shortcuts\n",
			st.Totals.Queries, st.Totals.Batches, st.Cached, st.Totals.SubIsoTests, st.Totals.ExactHits, st.Totals.EmptyShortcuts)
	}
}

// runMutate is the -mutate-op mode: submit one live dataset mutation to
// a gcserved (or a gcrouter, which fans it fleet-wide) and report the
// epoch it landed at. Retries are safe once a seq is assigned — an
// already-applied seq acks without re-applying.
func runMutate(addr, op, idsCSV, file string, seq int64, retries int, timeout time.Duration) {
	if _, ok := graphcache.ParseMutationOp(op); !ok {
		log.Fatalf("unknown -mutate-op %q (want add, remove or edit)", op)
	}
	req := graphcache.ServerMutateRequest{Op: op, Seq: seq}
	if idsCSV != "" {
		for _, part := range strings.Split(idsCSV, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				log.Fatalf("bad -mutate-ids entry %q: %v", part, err)
			}
			req.IDs = append(req.IDs, int32(id))
		}
	}
	if file != "" {
		// Parse locally first so a malformed file fails here with a line
		// number, not server-side with a generic 400.
		gs := loadGraphs(file)
		var text strings.Builder
		if err := graphcache.WriteGraphs(&text, gs); err != nil {
			log.Fatal(err)
		}
		req.Graphs = text.String()
	}

	cl := graphcache.NewServerClientWith(addr, graphcache.ServerClientOptions{
		MaxRetries:     retries,
		RequestTimeout: timeout,
	})
	resp, err := cl.Mutate(context.Background(), req)
	if err != nil {
		log.Fatalf("mutate: %v", err)
	}
	if !resp.Applied {
		fmt.Printf("seq %d already applied; dataset at epoch %d\n", resp.Seq, resp.Epoch)
		return
	}
	fmt.Printf("%s applied: epoch %d, seq %d\n", op, resp.Epoch, resp.Seq)
	if len(resp.AddedIDs) > 0 {
		fmt.Printf("added ids: %v\n", resp.AddedIDs)
	}
	if len(resp.RemovedIDs) > 0 {
		fmt.Printf("removed ids: %v\n", resp.RemovedIDs)
	}
	fmt.Printf("cache maintenance: %d extended, %d reverified, %d invalidated, %d window-patched\n",
		resp.Extended, resp.Reverified, resp.Invalidated, resp.WindowPatched)
}

func runCompare(out *bufio.Writer, m graphcache.Method, opts graphcache.Options, queries []*graphcache.Graph) {
	// Bare method.
	startBase := time.Now()
	baseTests := 0
	for _, q := range queries {
		cs := m.Filter(q)
		baseTests += len(cs)
		graphcache.Answer(m, q)
	}
	baseTime := time.Since(startBase)

	// Behind GraphCache.
	gc := graphcache.New(m, opts)
	startGC := time.Now()
	for _, q := range queries {
		gc.Query(q)
	}
	gcTime := time.Since(startGC)
	tot := gc.Totals()

	fmt.Fprintf(out, "baseline: %v (%.2f ms/query), %d sub-iso tests\n",
		baseTime.Round(time.Millisecond), msPer(baseTime, len(queries)), baseTests)
	fmt.Fprintf(out, "graphcache: %v (%.2f ms/query), %d sub-iso tests\n",
		gcTime.Round(time.Millisecond), msPer(gcTime, len(queries)), tot.SubIsoTests)
	if gcTime > 0 && tot.SubIsoTests > 0 {
		fmt.Fprintf(out, "speedup: %.2fx time, %.2fx sub-iso tests\n",
			float64(baseTime)/float64(gcTime), float64(baseTests)/float64(tot.SubIsoTests))
	}
	fmt.Fprintf(out, "hits: %d exact, %d empty-shortcut, %d container, %d containee\n",
		tot.ExactHits, tot.EmptyShortcuts, tot.ContainerHits, tot.ContaineeHits)
	fmt.Fprintf(out, "gc stage breakdown: filterM %v, filterGC %v (%d query-vs-query tests), verify %v\n",
		tot.FilterMTime.Round(time.Millisecond), tot.FilterGCTime.Round(time.Millisecond),
		tot.GCVerifications, tot.VerifyTime.Round(time.Millisecond))
}

func buildMethod(name string, ds *graphcache.Dataset) graphcache.Method {
	m, err := graphcache.NewMethodByName(name, ds)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func loadDataset(path string) *graphcache.Dataset {
	return graphcache.NewDataset(loadGraphs(path))
}

func loadGraphs(path string) []*graphcache.Graph {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	gs, err := graphcache.ParseGraphs(bufio.NewReader(f))
	if err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	return gs
}

func mustCloseFile(f *os.File) {
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func msPer(d time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Milliseconds()) / float64(n)
}
