package graphcache

import (
	"graphcache/internal/workload"
)

// Query is one workload entry: the query graph, plus a marker for queries
// drawn from a Type B no-answer pool.
type Query = workload.Query

// TypeAConfig parameterises the paper's Type A workload generator: pick a
// source graph (Uniform or Zipf over dataset graphs), a start node
// (Uniform or Zipf over its vertices), a size uniformly from Sizes, then
// extract the query by BFS from the start node.
type TypeAConfig = workload.TypeAConfig

// TypeBConfig parameterises Type B pool construction: per query size, a
// pool of answerable queries (random walks over dataset graphs) and a pool
// of no-answer queries (walks relabelled until the candidate set is
// non-empty but the answer set is empty).
type TypeBConfig = workload.TypeBConfig

// TypeBPools holds built Type B pools; derive workloads with Workload.
type TypeBPools = workload.TypeBPools

// TypeBWorkloadConfig parameterises drawing a workload from Type B pools:
// the no-answer probability (the paper's 0%/20%/50% categories) and the
// Zipf skew of query selection within each pool.
type TypeBWorkloadConfig = workload.TypeBWorkloadConfig

// Dist selects a sampling distribution for Type A source-graph and
// start-node choices.
type Dist = workload.Dist

// Sampling distributions for TypeAConfig.
const (
	Uniform = workload.Uniform
	Zipfian = workload.Zipfian // Zipf with the config's Alpha
)

// TypeA generates a Type A workload over ds. The category shorthands of
// the paper map as: "UU" = {Uniform, Uniform}, "ZU" = {Zipfian, Uniform},
// "ZZ" = {Zipfian, Zipfian} for (GraphDist, NodeDist).
func TypeA(ds *Dataset, cfg TypeAConfig, seed int64) []Query {
	return workload.TypeA(ds, cfg, seed)
}

// TypeACategory builds a TypeAConfig from a category name ("UU", "ZU" or
// "ZZ"), Zipf skew alpha, query sizes (in edges) and workload length.
func TypeACategory(cat string, alpha float64, sizes []int, numQueries int) (TypeAConfig, error) {
	return workload.TypeACategory(cat, alpha, sizes, numQueries)
}

// BuildTypeBPools constructs the per-size answerable and no-answer query
// pools for ds. Pool construction is the expensive step (each no-answer
// query is validated against the dataset); build once and derive many
// workloads.
func BuildTypeBPools(ds *Dataset, cfg TypeBConfig, seed int64) *TypeBPools {
	return workload.BuildTypeBPools(ds, cfg, seed)
}
