package graphcache_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§7), at laptop scale.
//
// Each BenchmarkFigN/BenchmarkTable1 drives the same experiment code as
// `gcbench -experiment <id>` (internal/bench) and reports the result grid
// through b.Log plus headline speedups as custom benchmark metrics, so
// `go test -bench=. -benchmem` regenerates the paper's evaluation and the
// numbers land in bench_output.txt. Absolute values depend on the machine
// and the scaled-down synthetic datasets; EXPERIMENTS.md records the
// shape comparison against the paper.
//
// The smaller BenchmarkQuery* and BenchmarkBuild* benches below measure
// the primitive operations (sub-iso matchers, index construction, cache
// hit paths) and back the ablation discussion in DESIGN.md.

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"graphcache"
	"graphcache/internal/bench"
)

// benchScale is deliberately smaller than gcbench's default SmallScale so
// the full `go test -bench=.` run finishes in minutes.
func benchScale() bench.Scale {
	sc := bench.SmallScale()
	sc.CountFactor = 0.01
	sc.Queries = 300
	sc.DenseQueries = 120
	sc.AnswerPool = 120
	sc.NoAnswerPool = 40
	return sc
}

var (
	envOnce sync.Once
	envInst *bench.Env
)

// benchEnv memoises one Env across all experiment benchmarks: datasets,
// indexes and Type B pools are built once and reused, as in gcbench.
func benchEnv() *bench.Env {
	envOnce.Do(func() { envInst = bench.NewEnv(benchScale()) })
	return envInst
}

// runExperiment executes one experiment driver per benchmark iteration
// and logs its tables. The headline mean speedup across all numeric
// cells is attached as a custom metric (speedup-mean) so regressions in
// cache effectiveness show up in benchmark diffs, not only in wall time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	env := benchEnv()
	var tables []*bench.Table
	for b.Loop() {
		tables = e.Run(env)
	}
	var buf bytes.Buffer
	sum, n := 0.0, 0
	for _, t := range tables {
		t.Format(&buf)
		for _, r := range t.Rows {
			for _, c := range r.Cells {
				sum += c
				n++
			}
		}
	}
	b.Log("\n" + buf.String())
	if n > 0 {
		b.ReportMetric(sum/float64(n), "cells-mean")
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5And6(b *testing.B) {
	runExperiment(b, "fig5-6")
}
func BenchmarkFig7(b *testing.B)     { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// ---- Primitive benchmarks ----------------------------------------------

// benchDataset returns a fixed small molecule dataset for the primitive
// benches.
func benchDataset() *graphcache.Dataset {
	return graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.004, 1), 42)
}

func benchQueries(ds *graphcache.Dataset, n int) []graphcache.Query {
	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, n)
	if err != nil {
		panic(err)
	}
	return graphcache.TypeA(ds, cfg, 7)
}

// BenchmarkQueryBare measures the bare methods' per-query cost.
func BenchmarkQueryBare(b *testing.B) {
	ds := benchDataset()
	qs := benchQueries(ds, 64)
	for _, mk := range []struct {
		name string
		m    graphcache.Method
	}{
		{"ggsx", graphcache.NewGGSX(ds, graphcache.GGSXOptions{})},
		{"grapes1", graphcache.NewGrapes(ds, graphcache.GrapesOptions{})},
		{"ctindex", graphcache.NewCTIndex(ds, graphcache.CTIndexOptions{})},
		{"vf2", graphcache.NewVF2(ds)},
		{"vf2plus", graphcache.NewVF2Plus(ds)},
		{"graphql", graphcache.NewGraphQL(ds)},
	} {
		b.Run(mk.name, func(b *testing.B) {
			i := 0
			for b.Loop() {
				graphcache.Answer(mk.m, qs[i%len(qs)].Graph)
				i++
			}
		})
	}
}

// BenchmarkQueryCached measures the per-query cost behind GraphCache on a
// repeating workload — the cache's steady-state hit path.
func BenchmarkQueryCached(b *testing.B) {
	ds := benchDataset()
	qs := benchQueries(ds, 64)
	for _, mk := range []struct {
		name string
		m    graphcache.Method
	}{
		{"ggsx", graphcache.NewGGSX(ds, graphcache.GGSXOptions{})},
		{"vf2plus", graphcache.NewVF2Plus(ds)},
	} {
		b.Run(mk.name, func(b *testing.B) {
			gc := graphcache.New(mk.m, graphcache.Options{CacheSize: 50, WindowSize: 10})
			for _, q := range qs { // warm the cache
				gc.Query(q.Graph)
			}
			i := 0
			for b.Loop() {
				gc.Query(qs[i%len(qs)].Graph)
				i++
			}
		})
	}
}

// BenchmarkCacheConcurrent measures the multi-caller query engine: the
// same repeating workload through one shared Cache, serially and from
// GOMAXPROCS concurrent callers (the b.RunParallel degree). The
// queries/sec metric is the headline: the parallel variant should clear
// the serial one on any multi-core machine.
func BenchmarkCacheConcurrent(b *testing.B) {
	ds := benchDataset()
	qs := benchQueries(ds, 64)
	newCache := func() *graphcache.Cache {
		gc := graphcache.New(graphcache.NewGGSX(ds, graphcache.GGSXOptions{}),
			graphcache.Options{CacheSize: 50, WindowSize: 10, AsyncRebuild: true})
		for _, q := range qs { // warm the cache
			gc.Query(q.Graph)
		}
		return gc
	}
	b.Run("serial", func(b *testing.B) {
		gc := newCache()
		i := 0
		for b.Loop() {
			gc.Query(qs[i%len(qs)].Graph)
			i++
		}
		gc.Flush()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("parallel", func(b *testing.B) {
		gc := newCache()
		var cursor atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(cursor.Add(1)) - 1
				gc.Query(qs[i%len(qs)].Graph)
			}
		})
		b.StopTimer() // drain async rebuilds untimed, as the serial variant does
		gc.Flush()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkCacheSharded isolates the sharded store's contribution to
// multi-caller throughput: the same workload through one shared Cache from
// GOMAXPROCS concurrent callers, with the cached-query store unsharded
// (Shards=1) versus partitioned at the default shard count (next power of
// two >= GOMAXPROCS). On a multi-core machine the sharded layout should
// match or clear the unsharded one — callers load disjoint index
// snapshots, append to disjoint window segments and credit disjoint
// statistics columns.
func BenchmarkCacheSharded(b *testing.B) {
	ds := benchDataset()
	qs := benchQueries(ds, 64)
	run := func(b *testing.B, shards int) {
		gc := graphcache.New(graphcache.NewGGSX(ds, graphcache.GGSXOptions{}),
			graphcache.Options{CacheSize: 50, WindowSize: 10, AsyncRebuild: true, Shards: shards})
		for _, q := range qs { // warm the cache
			gc.Query(q.Graph)
		}
		var cursor atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(cursor.Add(1)) - 1
				gc.Query(qs[i%len(qs)].Graph)
			}
		})
		b.StopTimer() // drain async rebuilds untimed
		gc.Flush()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("shards=1", func(b *testing.B) { run(b, 1) })
	b.Run("shards=default", func(b *testing.B) { run(b, 0) })
}

// BenchmarkQueryBatch compares one QueryBatch over 64 queries against 64
// sequential Query calls on an identically warmed cache — the execution
// primitive behind gcserved's request coalescer. The batch amortises
// index-snapshot loads, pool dispatches and statistics round-trips across
// the whole batch, so batched execution should be no slower than
// sequential on any machine and faster on multi-core ones.
func BenchmarkQueryBatch(b *testing.B) {
	ds := benchDataset()
	workload := benchQueries(ds, 64)
	qs := make([]*graphcache.Graph, len(workload))
	for i, q := range workload {
		qs[i] = q.Graph
	}
	newCache := func() *graphcache.Cache {
		gc := graphcache.New(graphcache.NewGGSX(ds, graphcache.GGSXOptions{}),
			graphcache.Options{CacheSize: 50, WindowSize: 10, AsyncRebuild: true})
		gc.QueryBatch(qs) // warm the cache
		return gc
	}
	b.Run("sequential-64", func(b *testing.B) {
		gc := newCache()
		for b.Loop() {
			for _, q := range qs {
				gc.Query(q)
			}
		}
		b.StopTimer()
		gc.Flush()
		b.ReportMetric(float64(b.N*len(qs))/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("batch-64", func(b *testing.B) {
		gc := newCache()
		for b.Loop() {
			gc.QueryBatch(qs)
		}
		b.StopTimer()
		gc.Flush()
		b.ReportMetric(float64(b.N*len(qs))/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkWindowRebuild measures steady-state window maintenance: with
// incremental GCindex updates the per-window cost is O(window), however
// large the cache — the counter test in internal/core pins the property;
// this bench tracks its constant factor.
func BenchmarkWindowRebuild(b *testing.B) {
	ds := benchDataset()
	qs := benchQueries(ds, 512)
	gc := graphcache.New(graphcache.NewVF2Plus(ds),
		graphcache.Options{CacheSize: 200, WindowSize: 20})
	for _, q := range qs { // fill the cache to capacity
		gc.Query(q.Graph)
	}
	gc.Flush()
	i := 0
	for b.Loop() {
		gc.Query(qs[i%len(qs)].Graph)
		i++
	}
	gc.Flush()
	tot := gc.Totals()
	if tot.WindowsProcessed > 0 {
		b.ReportMetric(float64(tot.MaintenanceTime.Nanoseconds())/float64(tot.WindowsProcessed), "ns/window")
	}
}

// BenchmarkIndexBuild measures FTV index construction (the pre-processing
// cost GraphCache avoids when used instead of an index, Fig. 12's story).
func BenchmarkIndexBuild(b *testing.B) {
	ds := benchDataset()
	b.Run("ggsx", func(b *testing.B) {
		for b.Loop() {
			graphcache.NewGGSX(ds, graphcache.GGSXOptions{})
		}
	})
	b.Run("grapes", func(b *testing.B) {
		for b.Loop() {
			graphcache.NewGrapes(ds, graphcache.GrapesOptions{})
		}
	})
	b.Run("ctindex", func(b *testing.B) {
		for b.Loop() {
			graphcache.NewCTIndex(ds, graphcache.CTIndexOptions{})
		}
	})
}

// BenchmarkSnapshot measures cache persistence: serialising and restoring
// a warmed 100-entry cache (§6.1's startup/shutdown path).
func BenchmarkSnapshot(b *testing.B) {
	ds := benchDataset()
	m := graphcache.NewVF2Plus(ds)
	gc := graphcache.New(m, graphcache.Options{CacheSize: 100, WindowSize: 20})
	for _, q := range benchQueries(ds, 256) {
		gc.Query(q.Graph)
	}
	gc.Flush()

	var snap bytes.Buffer
	if err := gc.WriteSnapshot(&snap); err != nil {
		b.Fatal(err)
	}
	b.Run("write", func(b *testing.B) {
		for b.Loop() {
			var buf bytes.Buffer
			if err := gc.WriteSnapshot(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		for b.Loop() {
			fresh := graphcache.New(m, graphcache.Options{CacheSize: 100, WindowSize: 20})
			if err := fresh.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubIso measures the raw matchers on a fixed query/target pair
// drawn from the dataset.
func BenchmarkSubIso(b *testing.B) {
	ds := benchDataset()
	qs := benchQueries(ds, 8)
	q := qs[0].Graph
	ms := map[string]graphcache.Method{
		"vf2":     graphcache.NewVF2(ds),
		"vf2plus": graphcache.NewVF2Plus(ds),
		"graphql": graphcache.NewGraphQL(ds),
		"ullmann": graphcache.NewUllmann(ds),
	}
	for name, m := range ms {
		b.Run(name, func(b *testing.B) {
			id := int32(0)
			for b.Loop() {
				m.Verify(q, id)
				id = (id + 1) % int32(ds.Len())
			}
		})
	}
}
