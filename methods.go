package graphcache

import (
	"fmt"
	"strings"

	"graphcache/internal/ctindex"
	"graphcache/internal/ggsx"
	"graphcache/internal/grapes"
	"graphcache/internal/iso"
	"graphcache/internal/method"
)

// Method is the pluggable query-processing interface — the paper's
// "Method M". GraphCache treats any Method as a black box with a filtering
// stage (produce a candidate set with no false negatives) and a
// verification stage (the sub-iso test for one candidate). The six bundled
// methods below implement it; so can any future method.
//
// Implementations must be safe for concurrent use.
type Method = method.Method

// Mode distinguishes subgraph-query methods (answers contain the query)
// from supergraph-query methods (answers are contained in the query).
type Mode = method.Mode

// Query semantics a Method answers.
const (
	// ModeSubgraph: return dataset graphs G with q ⊆ G.
	ModeSubgraph = method.ModeSubgraph
	// ModeSupergraph: return dataset graphs G with G ⊆ q.
	ModeSupergraph = method.ModeSupergraph
)

// DynamicMethod is the optional extension a Method implements to stay
// sound across live dataset mutations: ApplyDatasetMutation is called
// under the cache's mutation gate with the graphs added, the graphs
// edited (replacement versions, same IDs) and the IDs removed, and must
// leave the method's filtering with no false negatives over the new
// generation. All bundled methods implement it — the FTV indexes
// maintain their structures incrementally; the SI methods read the live
// dataset and need no maintenance. Cache.ApplyMutation refuses methods
// that do not implement it with ErrStaticMethod.
type DynamicMethod = method.DynamicMethod

// Answer runs a query through a bare method — filter then verify — without
// any caching. It is the baseline GraphCache is measured against.
func Answer(m Method, q *Graph) []int32 { return method.Answer(m, q) }

// FTV method constructors. All three are built over the dataset in a
// pre-processing step, as in the original systems.

// GGSXOptions configures a GraphGrepSX index. The zero value is the
// paper's configuration (paths up to 4 edges).
type GGSXOptions = ggsx.Options

// GrapesOptions configures a Grapes index. The zero value is Grapes1
// (paths up to 4 edges, 1 verification thread); set Threads to 6 for the
// paper's Grapes6.
type GrapesOptions = grapes.Options

// CTIndexOptions configures a CT-Index fingerprint index. The zero value
// is the paper's configuration (trees ≤ 6 vertices, cycles ≤ 8, 4,096-bit
// bitmaps).
type CTIndexOptions = ctindex.Options

// NewGGSX builds a GraphGrepSX index over ds: label paths in a suffix trie
// with per-graph counts; filtering keeps graphs whose path counts dominate
// the query's; verification is VF2.
func NewGGSX(ds *Dataset, opts GGSXOptions) Method { return ggsx.New(ds, opts) }

// NewGrapes builds a Grapes index over ds: label paths with occurrence
// locations; verification is restricted to the component of the graph
// induced by matched locations and runs on a worker pool.
func NewGrapes(ds *Dataset, opts GrapesOptions) Method { return grapes.New(ds, opts) }

// NewCTIndex builds a CT-Index over ds: tree and cycle features hashed
// into fixed-width fingerprints; filtering is a bitmap subset test;
// verification is VF2+.
func NewCTIndex(ds *Dataset, opts CTIndexOptions) Method { return ctindex.New(ds, opts) }

// SI method constructors. An SI method has no index: its candidate set is
// the whole dataset and all work happens in verification. GraphCache in
// front of an SI method is the paper's "fresh perspective" — caching as an
// alternative to building yet another index.

// NewVF2 returns the vanilla VF2 algorithm [Cordella et al. 2004] as a
// Method.
func NewVF2(ds *Dataset) Method { return method.NewVF2(ds) }

// NewVF2Plus returns VF2+ — VF2 with rarity- and degree-driven candidate
// ordering, the variant bundled with CT-Index — as a Method.
func NewVF2Plus(ds *Dataset) Method { return method.NewVF2Plus(ds) }

// NewGraphQL returns the GraphQL algorithm [He & Singh 2008], with
// neighbourhood-profile pruning, as a Method.
func NewGraphQL(ds *Dataset) Method { return method.NewGraphQL(ds) }

// NewUllmann returns Ullmann's algorithm [J.ACM 1976] as a Method. It is
// dominated by the other matchers and included as a historical baseline.
func NewUllmann(ds *Dataset) Method { return method.NewSI(ds, iso.Ullmann{}) }

// NewSupergraphSI returns a supergraph-query method over ds: it answers
// queries with the set of dataset graphs *contained in* the query, testing
// each dataset graph against the query with VF2. Wrap it in a Cache to
// expedite supergraph queries — the cache inverts its pruning rules
// automatically based on the method's Mode.
func NewSupergraphSI(ds *Dataset) Method { return method.NewSuperSI(ds, iso.VF2{}) }

// NewMethodByName builds one of the bundled methods over ds from its
// command-line name: ggsx, grapes (or grapes1), grapes6, ctindex, vf2,
// vf2plus, graphql or ullmann (case-insensitive). It backs the -method
// flag shared by gcquery and gcserved.
func NewMethodByName(name string, ds *Dataset) (Method, error) {
	switch strings.ToLower(name) {
	case "ggsx":
		return NewGGSX(ds, GGSXOptions{}), nil
	case "grapes", "grapes1":
		return NewGrapes(ds, GrapesOptions{Threads: 1}), nil
	case "grapes6":
		return NewGrapes(ds, GrapesOptions{Threads: 6}), nil
	case "ctindex":
		return NewCTIndex(ds, CTIndexOptions{}), nil
	case "vf2":
		return NewVF2(ds), nil
	case "vf2plus":
		return NewVF2Plus(ds), nil
	case "graphql":
		return NewGraphQL(ds), nil
	case "ullmann":
		return NewUllmann(ds), nil
	default:
		return nil, fmt.Errorf("graphcache: unknown method %q (want ggsx, grapes1, grapes6, ctindex, vf2, vf2plus, graphql or ullmann)", name)
	}
}

// Sub-iso entry points, exposed for applications that need a bare
// containment test outside any Method.

// Contains reports whether pattern ⊆ target under non-induced subgraph
// isomorphism (injective, label- and edge-preserving), using VF2.
func Contains(pattern, target *Graph) bool {
	return iso.Contains(iso.VF2{}, pattern, target)
}

// Isomorphic reports whether g and h are isomorphic (mutually contained
// with equal sizes).
func Isomorphic(g, h *Graph) bool { return iso.Isomorphic(iso.VF2{}, g, h) }
