package graphcache_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"graphcache"
)

// smallAIDS returns a laptop-scale molecule dataset shared by the public
// API tests.
func smallAIDS(tb testing.TB) *graphcache.Dataset {
	tb.Helper()
	cfg := graphcache.DefaultAIDS().Scaled(0.004, 1) // 160 graphs
	return graphcache.AIDSLike(cfg, 42)
}

func typeAWorkload(tb testing.TB, ds *graphcache.Dataset, cat string, n int) []graphcache.Query {
	tb.Helper()
	cfg, err := graphcache.TypeACategory(cat, 1.4, []int{4, 8, 12}, n)
	if err != nil {
		tb.Fatalf("TypeACategory(%q): %v", cat, err)
	}
	return graphcache.TypeA(ds, cfg, 7)
}

// TestPublicAPIQuickstart is the README quickstart, verified.
func TestPublicAPIQuickstart(t *testing.T) {
	ds := smallAIDS(t)
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})
	gc := graphcache.New(m, graphcache.Options{CacheSize: 50, WindowSize: 10})

	qs := typeAWorkload(t, ds, "ZZ", 120)
	answered := 0
	for _, q := range qs {
		res := gc.Query(q.Graph)
		if len(res.Answer) > 0 {
			answered++
		}
	}
	if answered == 0 {
		t.Fatal("no query had an answer; workload generator should extract from dataset graphs")
	}
	tot := gc.Totals()
	if tot.Queries != int64(len(qs)) {
		t.Fatalf("Totals.Queries = %d, want %d", tot.Queries, len(qs))
	}
	if tot.ExactHits == 0 {
		t.Error("a Zipf-repeating workload should produce exact cache hits")
	}
}

// TestCacheMatchesBaseline checks soundness through the public API: for
// every bundled method, GraphCache returns exactly the baseline answer.
func TestCacheMatchesBaseline(t *testing.T) {
	ds := smallAIDS(t)
	methods := map[string]graphcache.Method{
		"ggsx":    graphcache.NewGGSX(ds, graphcache.GGSXOptions{}),
		"grapes1": graphcache.NewGrapes(ds, graphcache.GrapesOptions{}),
		"grapes6": graphcache.NewGrapes(ds, graphcache.GrapesOptions{Threads: 6}),
		"ctindex": graphcache.NewCTIndex(ds, graphcache.CTIndexOptions{}),
		"vf2":     graphcache.NewVF2(ds),
		"vf2plus": graphcache.NewVF2Plus(ds),
		"graphql": graphcache.NewGraphQL(ds),
		"ullmann": graphcache.NewUllmann(ds),
	}
	qs := typeAWorkload(t, ds, "ZU", 60)
	for name, m := range methods {
		t.Run(name, func(t *testing.T) {
			gc := graphcache.New(m, graphcache.Options{CacheSize: 20, WindowSize: 5})
			for i, q := range qs {
				got := gc.Query(q.Graph).Answer
				want := graphcache.Answer(m, q.Graph)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: GC answer %v != baseline %v", i, got, want)
				}
			}
		})
	}
}

// TestSupergraphQueries runs the supergraph-mode cache end to end: answers
// are dataset graphs contained in the query.
func TestSupergraphQueries(t *testing.T) {
	// Build a dataset of fragments extracted from a pool of molecules,
	// then use the molecules themselves as supergraph queries — each is
	// guaranteed to contain the fragments cut out of it.
	molecules := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.001, 1), 3) // 40 graphs
	fcfg, err := graphcache.TypeACategory("UU", 1.4, []int{4, 6}, 60)
	if err != nil {
		t.Fatal(err)
	}
	fragments := graphcache.TypeA(molecules, fcfg, 5)
	fgs := make([]*graphcache.Graph, len(fragments))
	for i, f := range fragments {
		fgs[i] = f.Graph
	}
	ds := graphcache.NewDataset(fgs)

	m := graphcache.NewSupergraphSI(ds)
	if m.Mode() != graphcache.ModeSupergraph {
		t.Fatalf("Mode = %v, want ModeSupergraph", m.Mode())
	}
	gc := graphcache.New(m, graphcache.Options{CacheSize: 16, WindowSize: 4})

	queries := molecules.Graphs()
	nonEmpty := 0
	for _, q := range queries {
		got := gc.Query(q).Answer
		want := graphcache.Answer(m, q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("supergraph answer mismatch: %v != %v", got, want)
		}
		if len(got) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("no supergraph query contained any dataset fragment; generator scales are off")
	}
}

// TestSnapshotThroughFacade exercises the persistence lifecycle on the
// public API: warm a cache, snapshot it, restore into a fresh cache, and
// confirm the restored cache hits immediately.
func TestSnapshotThroughFacade(t *testing.T) {
	ds := smallAIDS(t)
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})
	opts := graphcache.Options{CacheSize: 30, WindowSize: 10}

	gc := graphcache.New(m, opts)
	qs := typeAWorkload(t, ds, "ZZ", 100)
	for _, q := range qs {
		gc.Query(q.Graph)
	}
	gc.Flush()

	var buf bytes.Buffer
	if err := gc.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	warm := graphcache.New(m, opts)
	if err := warm.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if len(warm.CachedSerials()) == 0 {
		t.Fatal("restore produced an empty cache")
	}
	for i, q := range qs {
		got := warm.Query(q.Graph).Answer
		want := graphcache.Answer(m, q.Graph)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d after restore: %v != %v", i, got, want)
		}
	}
	if warm.Totals().ExactHits == 0 {
		t.Error("warm cache produced no exact hits on the workload that filled it")
	}
}

// TestContainsAndIsomorphic exercises the bare matchers on hand-built
// graphs.
func TestContainsAndIsomorphic(t *testing.T) {
	tri := buildCycle(t, 3, 1)
	sq := buildCycle(t, 4, 1)
	path := buildPath(t, 3, 1)

	if graphcache.Contains(tri, sq) {
		t.Error("triangle should not embed in square")
	}
	if !graphcache.Contains(path, sq) {
		t.Error("3-path should embed in square")
	}
	if !graphcache.Isomorphic(tri, buildCycle(t, 3, 1)) {
		t.Error("two triangles with equal labels should be isomorphic")
	}
	if graphcache.Isomorphic(tri, sq) {
		t.Error("triangle and square are not isomorphic")
	}
}

// TestGraphIORoundtrip checks ParseGraphs/WriteGraphs through the facade.
func TestGraphIORoundtrip(t *testing.T) {
	ds := smallAIDS(t)
	var buf bytes.Buffer
	if err := graphcache.WriteGraphs(&buf, ds.Graphs()[:10]); err != nil {
		t.Fatal(err)
	}
	back, err := graphcache.ParseGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 10 {
		t.Fatalf("parsed %d graphs, want 10", len(back))
	}
	for i, g := range back {
		if !g.StructurallyEqual(ds.Graph(int32(i))) {
			t.Fatalf("graph %d changed across write/parse", i)
		}
	}
}

func TestParseGraphsString(t *testing.T) {
	gs, err := graphcache.ParseGraphsString("t # 0\nv 0 1\nv 1 2\ne 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].NumVertices() != 2 || gs[0].NumEdges() != 1 {
		t.Fatalf("unexpected parse result: %v", gs)
	}
	if _, err := graphcache.ParseGraphsString("t # 0\ne 0 1\n"); err == nil {
		t.Error("edge referencing undeclared vertices should fail to parse")
	}
}

// TestPolicyNames checks the public policy parser against all documented
// names.
func TestPolicyNames(t *testing.T) {
	for name, want := range map[string]graphcache.PolicyKind{
		"lru": graphcache.LRU, "pop": graphcache.POP, "pin": graphcache.PIN,
		"pinc": graphcache.PINC, "hd": graphcache.HD, "HD": graphcache.HD,
	} {
		got, err := graphcache.ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := graphcache.ParsePolicy("clock"); err == nil {
		t.Error("unknown policy should error")
	}
	if !strings.Contains(fmt.Sprint(graphcache.HD), "") { // PolicyKind must be printable
		t.Error("unreachable")
	}
}

// TestEstimateSubIsoCost sanity-checks the exported cost model: cost grows
// with target size and shrinks with label diversity.
func TestEstimateSubIsoCost(t *testing.T) {
	small := graphcache.EstimateSubIsoCost(5, 20, 4)
	big := graphcache.EstimateSubIsoCost(5, 40, 4)
	if big <= small {
		t.Errorf("cost should grow with N: c(5,20,4)=%g, c(5,40,4)=%g", small, big)
	}
	manyLabels := graphcache.EstimateSubIsoCost(5, 20, 16)
	if manyLabels >= small {
		t.Errorf("cost should shrink with L: L=4 %g, L=16 %g", small, manyLabels)
	}
	if c := graphcache.EstimateSubIsoCost(10, 5, 4); c != 0 {
		t.Errorf("N < n should cost 0, got %g", c)
	}
}

// TestTypeBWorkloadThroughFacade builds pools and checks the no-answer
// fractions and end-to-end cache correctness on a mixed workload.
func TestTypeBWorkloadThroughFacade(t *testing.T) {
	ds := smallAIDS(t)
	pools := graphcache.BuildTypeBPools(ds, graphcache.TypeBConfig{
		AnswerPoolPerSize:   30,
		NoAnswerPoolPerSize: 10,
		Sizes:               []int{4, 8},
	}, 11)
	qs := pools.Workload(graphcache.TypeBWorkloadConfig{
		NoAnswerProb: 0.5, Alpha: 1.4, NumQueries: 80,
	}, 13)
	if len(qs) != 80 {
		t.Fatalf("workload length %d, want 80", len(qs))
	}
	m := graphcache.NewVF2Plus(ds)
	gc := graphcache.New(m, graphcache.Options{CacheSize: 20, WindowSize: 5})
	noAns := 0
	for _, q := range qs {
		res := gc.Query(q.Graph)
		if q.NoAnswer {
			noAns++
			if len(res.Answer) != 0 {
				t.Fatalf("no-answer query returned %v", res.Answer)
			}
		}
	}
	if noAns == 0 || noAns == len(qs) {
		t.Errorf("no-answer mix = %d/%d, want a genuine mix", noAns, len(qs))
	}
	// Zipf selection within the pools repeats queries, so the cache must
	// see exact hits (the empty-answer shortcut itself is unit-tested in
	// internal/core).
	if gc.Totals().ExactHits == 0 {
		t.Error("a Zipf-repeating Type B workload should produce exact hits")
	}
}

// buildCycle returns a cycle of n vertices all labelled l.
func buildCycle(tb testing.TB, n int, l graphcache.Label) *graphcache.Graph {
	tb.Helper()
	b := graphcache.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(l)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// buildPath returns a path of n vertices all labelled l.
func buildPath(tb testing.TB, n int, l graphcache.Label) *graphcache.Graph {
	tb.Helper()
	b := graphcache.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(l)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}
