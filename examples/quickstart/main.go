// Quickstart: the smallest complete GraphCache program.
//
// It builds a molecule-style dataset, indexes it with GraphGrepSX, wraps
// the method in GraphCache, runs a skewed workload, and prints what the
// cache did. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	// 1. A dataset. Real deployments parse one with graphcache.ParseGraphs;
	// here we synthesise 400 molecule-like graphs (5% of the AIDS dataset's
	// 40,000, same graph shapes).
	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.01, 1), 42)
	st := ds.ComputeStats()
	fmt.Printf("dataset: %d graphs, avg %.0f vertices / %.0f edges, %d labels\n",
		st.NumGraphs, st.AvgVertices, st.AvgEdges, st.DistinctLabels)

	// 2. A query-processing method — the paper's "Method M". Any of the
	// six bundled methods (or your own) plugs in identically.
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})

	// 3. GraphCache in front of it. The zero Options value is the paper's
	// default configuration: 100 cached queries, window of 20, HD policy.
	// AsyncRebuild keeps cache maintenance off the query path, as in the
	// paper's architecture.
	gc := graphcache.New(m, graphcache.Options{AsyncRebuild: true})

	// 4. A workload. Type A "ZZ": Zipf-skewed choice of source graph and
	// start node — queries repeat and overlap, the premise of any cache.
	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, 1000)
	if err != nil {
		log.Fatal(err)
	}
	queries := graphcache.TypeA(ds, cfg, 7)

	// 5. Run it.
	start := time.Now()
	withAnswers := 0
	for _, q := range queries {
		res := gc.Query(q.Graph)
		if len(res.Answer) > 0 {
			withAnswers++
		}
	}
	elapsed := time.Since(start)

	tot := gc.Totals()
	fmt.Printf("\n%d queries in %v; %d had non-empty answers\n",
		tot.Queries, elapsed.Round(time.Millisecond), withAnswers)
	fmt.Printf("sub-iso tests actually run: %d\n", tot.SubIsoTests)
	fmt.Printf("cache hits: %d exact, %d subgraph (query ⊆ cached), %d supergraph (cached ⊆ query), %d empty shortcuts\n",
		tot.ExactHits, tot.ContainerHits, tot.ContaineeHits, tot.EmptyShortcuts)
	fmt.Printf("cache maintenance (off the query path): %v\n",
		tot.MaintenanceTime.Round(time.Microsecond))

	// 6. The same workload without the cache, for comparison.
	startBase := time.Now()
	baseTests := 0
	for _, q := range queries {
		baseTests += len(m.Filter(q.Graph))
		graphcache.Answer(m, q.Graph)
	}
	baseElapsed := time.Since(startBase)
	fmt.Printf("\nbare %s: %v, %d sub-iso tests\n", m.Name(), baseElapsed.Round(time.Millisecond), baseTests)
	if elapsed > 0 {
		fmt.Printf("speedup: %.2fx time, %.2fx sub-iso tests\n",
			float64(baseElapsed)/float64(elapsed),
			float64(baseTests)/float64(max64(tot.SubIsoTests, 1)))
	}
}

func max64(v, lo int64) int64 {
	if v < lo {
		return lo
	}
	return v
}
