// Dynamic-dataset quickstart: live mutations under a warm cache.
//
// It builds a cache over a synthetic molecule dataset, warms it with a
// workload, then mutates the dataset while the cache stays hot — adding
// graphs, removing graphs and editing edges — and shows the repaired
// answers matching a cold cache built over the final dataset. Run with:
//
//	go run ./examples/mutate
//
// The networked equivalent, against a running gcserved (or a gcrouter,
// which fans the mutation to every backend):
//
//	gcserved -dataset aids.g -method ggsx -journal aids.wal &
//	gcquery -server 127.0.0.1:7621 -mutate-op remove -mutate-ids 3,17
//	gcquery -server 127.0.0.1:7621 -mutate-op add -mutate-file new.g
package main

import (
	"context"
	"fmt"
	"log"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	// 1. A dataset, a method and a cache, as in every GraphCache
	// program. All bundled methods implement DynamicMethod, so their
	// indexes stay sound across mutations.
	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.01, 1), 42)
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})
	gc := graphcache.New(m, graphcache.Options{CacheSize: 100, WindowSize: 20})

	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, 120)
	if err != nil {
		log.Fatal(err)
	}
	queries := graphcache.TypeA(ds, cfg, 7)

	// 2. Warm the cache: repeated workload queries become cached
	// entries that later mutations must keep truthful.
	for _, q := range queries {
		gc.Query(q.Graph)
	}
	fmt.Printf("warmed: %d queries served, %d cached, dataset epoch %d\n",
		gc.Totals().Queries, len(gc.CachedSerials()), gc.DatasetEpoch())

	// 3. Add two graphs. Additions can only extend cached answers: each
	// cached query is tested once against each new graph.
	added, err := gc.AddGraphs([]*graphcache.Graph{
		ds.Graph(0).Clone(), ds.Graph(1).Clone(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("add: ids %v at epoch %d — %d cached entries extended\n",
		added.AddedIDs, added.Epoch, added.Extended)

	// 4. Remove a graph. The reverse index pinpoints exactly the cached
	// entries whose answers contain it; nothing else is touched.
	removed, err := gc.RemoveGraphs([]int32{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remove: ids %v at epoch %d — %d cached answers shrank\n",
		removed.RemovedIDs, removed.Epoch, removed.Invalidated)

	// 5. Edit edges in place. The edited graph may enter or leave any
	// cached answer, so each cached query is re-verified against it —
	// one sub-iso test per entry, not a cache flush.
	g := ds.Graph(5)
	edited, err := gc.EditGraphEdges(5, []graphcache.EdgeEdit{
		{U: 0, V: int32(g.NumVertices() - 1), Del: false}, // close a ring
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edit: graph 5 at epoch %d — %d entries re-verified\n",
		edited.Epoch, edited.Reverified)

	// 6. Soundness check: every answer the warm cache serves now is
	// identical to a cold cache built over the mutated dataset.
	cold := graphcache.New(graphcache.NewGGSX(ds, graphcache.GGSXOptions{}), graphcache.Options{})
	mismatches := 0
	for _, q := range queries {
		warm := gc.Query(q.Graph).Answer
		want := cold.Query(q.Graph).Answer
		if !equal(warm, want) {
			mismatches++
		}
	}
	fmt.Printf("soundness: %d/%d answers identical to a cold cache at epoch %d\n",
		len(queries)-mismatches, len(queries), gc.DatasetEpoch())
	if mismatches > 0 {
		log.Fatal("warm cache diverged from cold rebuild")
	}

	// 7. The same over the wire: gcserved's POST /mutate. A Seq makes
	// the mutation idempotent — a retry after a lost ack is safe — and
	// a gcrouter in front fans the same request to every backend. With
	// ServerOptions.JournalPath the ack would also be crash-durable.
	srv := graphcache.NewServer(gc, graphcache.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	cl := graphcache.NewServerClient(srv.Addr())
	ctx := context.Background()
	resp, err := cl.Mutate(ctx, graphcache.ServerMutateRequest{Op: "remove", IDs: []int32{7}, Seq: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("over the wire: removed %v at epoch %d, seq %d\n", resp.RemovedIDs, resp.Epoch, resp.Seq)
	if dup, err := cl.Mutate(ctx, graphcache.ServerMutateRequest{Op: "remove", IDs: []int32{8}, Seq: 1}); err != nil || dup.Applied {
		log.Fatalf("seq replay: applied=%v err=%v, want a deduplicated ack", dup.Applied, err)
	}
	fmt.Println("seq 1 replayed: deduplicated, dataset untouched")
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
