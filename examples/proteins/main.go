// Proteins: cache pollution and admission control on dense graphs.
//
// On dense datasets (the paper's PCM protein contact maps, average degree
// ≈ 22) GraphCache discovered the cache-pollution problem (§6.2): cheap
// queries fill the cache and the expensive queries — which dominate total
// time — see little benefit. The fix is admission control: score each
// query's expensiveness as verification time over filtering time, and
// only admit the top fraction.
//
// This example illustrates the paper's Figure 9 trade-off on a
// contact-map dataset: admission control trades hit volume for hit
// value, so the wall-clock speedup can rise even as the sub-iso-test
// speedup falls. It prints the tail statistics behind the effect (the
// paper's top-1% analysis); at this micro scale individual runs are
// noisy — the tuned, repeatable experiment is
// `gcbench -experiment fig9`.
//
//	go run ./examples/proteins
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	// A small protein-contact-map-like dataset: few graphs, dense.
	ds := graphcache.PCMLike(graphcache.DefaultPCM().Scaled(0.15, 0.2), 5)
	st := ds.ComputeStats()
	fmt.Printf("dataset: %d graphs, avg degree %.1f\n", st.NumGraphs, st.AvgDegree)

	// On dense graphs, length-4 path enumeration is combinatorially
	// infeasible; index paths of length ≤ 2, as the experiment harness
	// does for PCM/Synthetic (see DESIGN.md).
	m := graphcache.NewGrapes(ds, graphcache.GrapesOptions{Threads: 6, MaxPathLen: 2})

	// A Type B workload with 20% no-answer queries, as in Figure 9. The
	// paper queries PCM with 20-40-edge patterns; the larger sizes are
	// what makes verification expensive and its cost highly variable.
	pools := graphcache.BuildTypeBPools(ds, graphcache.TypeBConfig{
		AnswerPoolPerSize:   60,
		NoAnswerPoolPerSize: 20,
		Sizes:               []int{16, 20, 25},
	}, 17)
	queries := pools.Workload(graphcache.TypeBWorkloadConfig{
		NoAnswerProb: 0.2, Alpha: 1.4, NumQueries: 800,
	}, 23)

	// Baseline.
	baseTimes := make([]time.Duration, len(queries))
	baseTests := 0
	for i, q := range queries {
		baseTests += len(m.Filter(q.Graph))
		qStart := time.Now()
		graphcache.Answer(m, q.Graph)
		baseTimes[i] = time.Since(qStart)
	}
	baseTotal := sum(baseTimes)
	fmt.Printf("bare grapes6: %v, %d sub-iso tests\n", baseTotal.Round(time.Millisecond), baseTests)
	fmt.Printf("top-5%% most expensive queries account for %.0f%% of total time\n\n",
		100*tailShare(baseTimes, 0.05))

	// The paper's §7.3 analysis tracks what happens to the expensive
	// tail specifically: mark the top-5% most expensive queries under
	// the baseline and measure their cost under each cache mode.
	expensive := topIndexes(baseTimes, 0.05)
	baseTail := sumAt(baseTimes, expensive)

	for _, mode := range []struct {
		name      string
		admission float64
	}{
		{"cache only (C)", 0},
		{"cache + admission control (C+AC)", 0.25},
	} {
		// The cache must be small relative to the distinct-query
		// population (240 pool entries here), or pollution never occurs
		// — the paper's C = 100 faces pools of 65,000.
		gc := graphcache.New(m, graphcache.Options{
			CacheSize:         12,
			WindowSize:        6,
			Policy:            graphcache.HD,
			AdmissionFraction: mode.admission,
			AsyncRebuild:      true,
		})
		times := make([]time.Duration, len(queries))
		for i, q := range queries {
			qStart := time.Now()
			gc.Query(q.Graph)
			times[i] = time.Since(qStart)
		}
		total := sum(times)
		tot := gc.Totals()
		fmt.Printf("%s:\n", mode.name)
		fmt.Printf("  %v total (%.2fx time speedup), %d sub-iso tests (%.2fx fewer)\n",
			total.Round(time.Millisecond),
			safeDiv(float64(baseTotal), float64(total)),
			tot.SubIsoTests,
			safeDiv(float64(baseTests), float64(tot.SubIsoTests)))
		fmt.Printf("  hits: %d exact, %d container, %d containee; rejected by admission: %d\n",
			tot.ExactHits, tot.ContainerHits, tot.ContaineeHits, tot.RejectedByAdmission)
		tail := sumAt(times, expensive)
		fmt.Printf("  expensive-tail time: %v -> %v (%.2fx speedup on the tail)\n",
			baseTail.Round(time.Millisecond), tail.Round(time.Millisecond),
			safeDiv(float64(baseTail), float64(tail)))
		if mode.admission > 0 {
			fmt.Printf("  calibrated expensiveness threshold: %.2f (verify/filter time)\n",
				gc.AdmissionThreshold())
		}
		fmt.Println()
	}

	fmt.Println("What to look for, per the paper's §7.3 analysis: admission control")
	fmt.Println("concentrates the cache on expensive queries, trading hit volume for")
	fmt.Println("hit value. Single runs at this micro scale are noisy; the tuned,")
	fmt.Println("repeatable experiment is `go run ./cmd/gcbench -experiment fig9`.")
}

func sum(ds []time.Duration) time.Duration {
	var t time.Duration
	for _, d := range ds {
		t += d
	}
	return t
}

// tailShare returns the fraction of total time consumed by the top-f
// fraction of entries.
func tailShare(ds []time.Duration, f float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	k := int(f * float64(len(sorted)))
	if k < 1 {
		k = 1
	}
	return float64(sum(sorted[:k])) / float64(sum(sorted))
}

// topIndexes returns the indexes of the top-f fraction of entries by
// value.
func topIndexes(ds []time.Duration, f float64) []int {
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return ds[idx[i]] > ds[idx[j]] })
	k := int(f * float64(len(ds)))
	if k < 1 {
		k = 1
	}
	return idx[:k]
}

// sumAt sums the entries at the given indexes.
func sumAt(ds []time.Duration, idx []int) time.Duration {
	var t time.Duration
	for _, i := range idx {
		t += ds[i]
	}
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
