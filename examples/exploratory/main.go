// Exploratory analytics: sub/supergraph hits beyond exact matching.
//
// The paper motivates GraphCache with exploratory query sessions: an
// analyst starts broad and narrows down (each refinement is a supergraph
// of the previous query), or starts specific and generalises (each step
// is a subgraph). A traditional exact-match cache never hits on such
// sessions; GraphCache's semantic matching hits on every step.
//
// This example simulates drill-down sessions over a molecule dataset and
// separates the benefit by hit kind. It then flips the direction and runs
// *supergraph queries* (find the dataset fragments contained in my query)
// through the same cache machinery.
//
//	go run ./examples/exploratory
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.008, 1), 29)
	fmt.Printf("dataset: %d molecule-like graphs\n\n", ds.Len())

	// ---- Part 1: drill-down sessions as subgraph queries -------------
	//
	// Each session picks a dataset graph and a start vertex, then issues
	// queries of growing size along one BFS expansion: q1 ⊆ q2 ⊆ q3 ⊆ q4.
	// Sessions repeat with Zipf-like popularity, but *within* a session
	// every query is new — exact matching alone cannot help.
	r := rand.New(rand.NewSource(31))
	sessions := makeSessions(ds, 60, r)
	var queries []*graphcache.Graph
	for i := 0; i < 240; i++ {
		s := sessions[zipfPick(r, len(sessions))]
		queries = append(queries, s...)
	}
	fmt.Printf("workload: %d drill-down queries (%d sessions of %d steps)\n",
		len(queries), len(sessions), len(sessions[0]))

	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})

	baseStart := time.Now()
	baseTests := 0
	for _, q := range queries {
		baseTests += len(m.Filter(q))
		graphcache.Answer(m, q)
	}
	baseTime := time.Since(baseStart)

	gc := graphcache.New(m, graphcache.Options{CacheSize: 100, WindowSize: 20, AsyncRebuild: true})
	gcStart := time.Now()
	for _, q := range queries {
		gc.Query(q)
	}
	gcTime := time.Since(gcStart)
	tot := gc.Totals()

	fmt.Printf("bare ggsx:   %v, %d sub-iso tests\n", baseTime.Round(time.Millisecond), baseTests)
	fmt.Printf("graphcache:  %v, %d sub-iso tests (%.2fx time, %.2fx tests)\n",
		gcTime.Round(time.Millisecond), tot.SubIsoTests,
		safeDiv(float64(baseTime), float64(gcTime)),
		safeDiv(float64(baseTests), float64(tot.SubIsoTests)))
	fmt.Printf("hit breakdown: %d exact, %d subgraph-of-cached (Eq.1), %d supergraph-of-cached (Eq.2), %d empty shortcuts\n\n",
		tot.ExactHits, tot.ContainerHits, tot.ContaineeHits, tot.EmptyShortcuts)

	// ---- Part 2: the inverse direction — supergraph queries ----------
	//
	// Build a dataset of small fragments and ask, for a large molecule,
	// which fragments it contains. GraphCache inverts Eq. 1/2 for
	// supergraph-mode methods automatically.
	fragCfg, err := graphcache.TypeACategory("UU", 1.4, []int{4, 6}, 150)
	if err != nil {
		log.Fatal(err)
	}
	frags := graphcache.TypeA(ds, fragCfg, 37)
	fgs := make([]*graphcache.Graph, len(frags))
	for i, f := range frags {
		fgs[i] = f.Graph
	}
	fragDS := graphcache.NewDataset(fgs)
	super := graphcache.NewSupergraphSI(fragDS)
	sgc := graphcache.New(super, graphcache.Options{CacheSize: 50, WindowSize: 10, AsyncRebuild: true})

	// Supergraph queries: Zipf-repeated dataset molecules.
	mols := ds.Graphs()
	answered := 0
	superStart := time.Now()
	for i := 0; i < 300; i++ {
		q := mols[zipfPick(r, len(mols))]
		res := sgc.Query(q)
		if len(res.Answer) > 0 {
			answered++
		}
	}
	superTime := time.Since(superStart)
	stot := sgc.Totals()
	fmt.Printf("supergraph mode: 300 queries over %d fragments in %v\n",
		fragDS.Len(), superTime.Round(time.Millisecond))
	fmt.Printf("%d queries matched fragments; hits: %d exact, %d container, %d containee; %d sub-iso tests\n",
		answered, stot.ExactHits, stot.ContainerHits, stot.ContaineeHits, stot.SubIsoTests)
}

// makeSessions builds n drill-down sessions of 4 growing BFS-extracted
// queries each.
func makeSessions(ds *graphcache.Dataset, n int, r *rand.Rand) [][]*graphcache.Graph {
	var sessions [][]*graphcache.Graph
	for len(sessions) < n {
		g := ds.Graph(int32(r.Intn(ds.Len())))
		start := int32(r.Intn(g.NumVertices()))
		order := g.BFSOrder(start)
		if len(order) < 14 {
			continue
		}
		var steps []*graphcache.Graph
		ok := true
		for _, size := range []int{4, 7, 10, 14} {
			sub, _, err := g.InducedSubgraph(order[:size])
			if err != nil || !sub.IsConnected() {
				ok = false
				break
			}
			steps = append(steps, sub)
		}
		if ok {
			sessions = append(sessions, steps)
		}
	}
	return sessions
}

// zipfPick samples an index in [0,n) with a Zipf-like skew (rank-1/rank
// weighting, cheap and good enough for an example).
func zipfPick(r *rand.Rand, n int) int {
	for {
		i := int(float64(n) * r.Float64() * r.Float64())
		if i < n {
			return i
		}
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
