// Molecules: chemical-pattern search with a policy bake-off.
//
// The paper's headline finding (§7.3, Figure 4) is that no single cache
// replacement policy wins everywhere — PIN leads on AIDS-like data, PINC
// on PDBS-like data — and that the hybrid HD policy tracks whichever is
// best. This example reproduces that comparison on a molecule dataset:
// the same CT-Index method and the same workload run once per policy, and
// the resulting speedups are printed side by side.
//
//	go run ./examples/molecules
package main

import (
	"fmt"
	"log"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.008, 1), 11)
	fmt.Printf("dataset: %d molecule-like graphs\n", ds.Len())

	// CT-Index: the FTV method with the strongest filter and the
	// fastest verifier of the three bundled ones.
	m := graphcache.NewCTIndex(ds, graphcache.CTIndexOptions{})

	// A Zipf-skewed exploratory workload: fragment queries of 4-12 edges.
	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, 800)
	if err != nil {
		log.Fatal(err)
	}
	queries := graphcache.TypeA(ds, cfg, 23)

	// Baseline: the bare method.
	baseStart := time.Now()
	baseTests := 0
	for _, q := range queries {
		baseTests += len(m.Filter(q.Graph))
		graphcache.Answer(m, q.Graph)
	}
	baseTime := time.Since(baseStart)
	fmt.Printf("bare ctindex: %v, %d sub-iso tests\n\n", baseTime.Round(time.Millisecond), baseTests)

	fmt.Printf("%-6s %12s %14s %10s %10s\n", "policy", "time", "sub-iso tests", "t-speedup", "i-speedup")
	for _, pol := range []graphcache.PolicyKind{
		graphcache.LRU, graphcache.POP, graphcache.PIN, graphcache.PINC, graphcache.HD,
	} {
		gc := graphcache.New(m, graphcache.Options{
			CacheSize:    50,
			WindowSize:   10,
			Policy:       pol,
			AsyncRebuild: true, // maintenance off the query path, as in the paper
		})
		start := time.Now()
		for _, q := range queries {
			gc.Query(q.Graph)
		}
		elapsed := time.Since(start)
		tot := gc.Totals()
		fmt.Printf("%-6v %12v %14d %9.2fx %9.2fx\n",
			pol, elapsed.Round(time.Millisecond), tot.SubIsoTests,
			safeDiv(float64(baseTime), float64(elapsed)),
			safeDiv(float64(baseTests), float64(tot.SubIsoTests)))
	}

	fmt.Println("\nThe paper's takeaway: when dataset and workload characteristics are")
	fmt.Println("unknown a priori, use HD — it picks between PIN and PINC at each")
	fmt.Println("eviction from the coefficient of variation of observed savings, and")
	fmt.Println("lands on or near the best policy for the data at hand.")
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
