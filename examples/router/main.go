// Serving-tier quickstart: N gcserved replicas behind a gcrouter, with
// a load-management drill.
//
// It synthesises a dataset, starts two in-process gcserved backends (the
// same Server type the standalone daemon runs) — one of them behind a
// fault-injecting chaos proxy — and a Router over them, then queries the
// fleet through the ordinary Go client: the router speaks the gcserved
// wire API, so clients cannot tell the difference. The drill then
// demonstrates the serving tier's load management:
//
//  1. chaos: the proxy drops half of one backend's traffic; router
//     failover plus client retries absorb it — zero failed requests;
//  2. breaker cycle: the backend goes fully dark until its circuit
//     breaker opens, then heals and is readmitted through a half-open
//     probe — all observable in the breaker's transition counters;
//  3. overload: a burst beyond the router's shed threshold is refused
//     fast with 429 + Retry-After instead of queueing without bound;
//  4. elastic fleet: a third backend joins through the admin API —
//     warmed from a peer's cache snapshot before its first dispatch —
//     serves its ring share, and drains back out, with zero failed
//     requests in either direction;
//  5. telemetry: one traced query (?debug=trace) shows every hop's
//     spans under the request id the router minted, and one /metrics
//     scrape — parsed with the repo's own exposition parser — yields
//     the fleet's p99 query latency.
//
// Run with:
//
//	go run ./examples/router
//
// The standalone equivalent, against files on disk:
//
//	gcgen dataset -name aids -count-factor 0.01 -o aids.g
//	gcgen workload -dataset aids.g -type ZZ -n 200 -o queries.g
//	gcserved -dataset aids.g -addr 127.0.0.1:7621 &
//	gcserved -dataset aids.g -addr 127.0.0.1:7622 &
//	gcfault  -listen 127.0.0.1:7721 -target 127.0.0.1:7622 -drop-rate 0.5 &
//	gcrouter -backends 127.0.0.1:7621,127.0.0.1:7721 -mode replicate &
//	gcquery  -server 127.0.0.1:7631 -queries queries.g -retries 5
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"graphcache"
	"graphcache/internal/faultproxy"
	"graphcache/internal/telemetry"
)

func main() {
	log.SetFlags(0)

	// 1. One dataset and method, shared by the fleet (methods are
	// read-only after construction); each backend owns its own cache.
	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.01, 1), 42)
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})

	// 2. Two gcserved backends on ephemeral ports.
	var servers []*graphcache.Server
	for i := 0; i < 2; i++ {
		gc := graphcache.New(m, graphcache.Options{AsyncRebuild: true})
		srv := graphcache.NewServer(gc, graphcache.ServerOptions{Addr: "127.0.0.1:0"})
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		go srv.Serve()
		servers = append(servers, srv)
	}

	// 3. A chaos proxy in front of the second backend — the same harness
	// cmd/gcfault runs standalone. The router talks to the proxy's
	// address; the proxy decides which requests reach the backend.
	chaos := faultproxy.New(servers[1].Addr(), 1)
	if err := chaos.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	go chaos.Serve()

	// 4. The router in replicate mode, with tight load-management knobs
	// so the drill is quick: a small error budget over a short window, a
	// fast breaker cooldown, bounded per-backend queues and a low shed
	// threshold.
	rt, err := graphcache.NewRouter(graphcache.RouterOptions{
		Addr:              "127.0.0.1:0",
		Backends:          []string{servers[0].Addr(), chaos.Addr()},
		Mode:              graphcache.RouteReplicate,
		ProbeInterval:     50 * time.Millisecond,
		BreakerWindow:     2 * time.Second,
		ErrorBudget:       0.25,
		BreakerMinSamples: 4,
		BreakerCooldown:   100 * time.Millisecond,
		QueueBound:        8,
		ShedThreshold:     8,
		AdminAddr:         "127.0.0.1:0", // topology admin API for the scale-up leg
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	go rt.Serve()
	fmt.Printf("routing over 2 backends (one behind a chaos proxy) on http://%s\n", rt.Addr())

	// 5. A resilient client: per-attempt timeouts plus retries with
	// jittered backoff that honour Retry-After. Queries are idempotent,
	// so retrying through chaos is always safe.
	cl := graphcache.NewServerClientWith(rt.Addr(), graphcache.ServerClientOptions{
		MaxRetries:     5,
		RetryBaseDelay: 10 * time.Millisecond,
	})
	ctx := context.Background()

	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, 120)
	if err != nil {
		log.Fatal(err)
	}
	queries := graphcache.TypeA(ds, cfg, 7)

	// 6. Chaos drill: half of the flaky backend's traffic is severed
	// mid-request. Router failover re-dispatches to the steady replica
	// and the client retries refusals — no query may fail.
	chaos.SetDropRate(0.5)
	for i := 0; i < 60; i++ {
		if _, err := cl.Query(ctx, queries[i].Graph); err != nil {
			log.Fatalf("query %d through 50%% chaos: %v", i, err)
		}
	}
	fmt.Println("60 queries survived a backend dropping half its traffic")

	// 7. Breaker cycle: the flaky backend goes fully dark. Failed
	// dispatches and probes breach its error budget, the breaker opens,
	// and queries flow through the steady replica alone.
	chaos.SetDropRate(1)
	waitBreaker(rt, chaos.Addr(), "open")
	for i := 60; i < 120; i++ {
		if _, err := cl.Query(ctx, queries[i].Graph); err != nil {
			log.Fatalf("query %d during blackout: %v", i, err)
		}
	}
	fmt.Println("60 more queries survived the backend's blackout (breaker open)")

	// Heal: after the cooldown a half-open probe readmits the backend —
	// no restart, no operator, just the breaker's own cycle.
	chaos.SetDropRate(0)
	waitBreaker(rt, chaos.Addr(), "closed")
	br := breakerOf(rt, chaos.Addr())
	fmt.Printf("breaker cycle observed: %d opens, %d half-opens, %d closes\n",
		br.Opens, br.HalfOpens, br.Closes)

	// 8. Overload: a burst far beyond the shed threshold. The front door
	// refuses the excess fast with 429 + Retry-After (seen here as
	// ServerStatusError) instead of queueing without bound. A plain
	// no-retry client makes the refusals visible.
	chaos.SetLatency(200 * time.Millisecond) // make requests dwell
	plain := graphcache.NewServerClient(rt.Addr())
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, shed := 0, 0
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := plain.Query(ctx, queries[i%len(queries)].Graph)
			mu.Lock()
			defer mu.Unlock()
			var se *graphcache.ServerStatusError
			switch {
			case err == nil:
				served++
			case errors.As(err, &se) && se.Code == 429:
				shed++
			default:
				log.Fatalf("burst query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("burst of 40 over threshold 8: %d served, %d shed with 429+Retry-After\n", served, shed)

	// 9. Fleet-wide stats through the plain client, router counters from
	// the Router itself.
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	c := rt.Counters()
	fmt.Printf("fleet totals: %d queries, %d cached, %d exact hits\n",
		st.Totals.Queries, st.Cached, st.Totals.ExactHits)
	fmt.Printf("router: routed %d, retried %d, breaker opens %d, shed %d\n",
		c.Routed, c.Retried, c.Ejected, c.Shed)

	// 10. Elastic scale-up through the admin API: a third backend joins
	// the live fleet. The router health-checks it, ships it the
	// least-loaded healthy peer's cache snapshot (GET /snapshot →
	// POST /warm), and only then admits it to the consistent-hash ring —
	// its first dispatch ever hits a warmed cache. Then it drains back
	// out: no new dispatches, in-flight work finishes, off the ring.
	chaos.SetLatency(0)
	gc3 := graphcache.New(m, graphcache.Options{AsyncRebuild: true})
	third := graphcache.NewServer(gc3, graphcache.ServerOptions{Addr: "127.0.0.1:0"})
	if err := third.Start(); err != nil {
		log.Fatal(err)
	}
	go third.Serve()
	servers = append(servers, third)

	admin := "http://" + rt.AdminAddr()
	var joined graphcache.RouterJoinResponse
	adminCall(ctx, http.MethodPost, admin+"/backends",
		graphcache.RouterJoinRequest{Addr: third.Addr()}, &joined)
	fmt.Printf("backend %s joined: warmed from %s with %d cached queries before its first dispatch\n",
		joined.Addr, joined.WarmedFrom, joined.Cached)

	for i := 0; i < 60; i++ { // the grown fleet serves; the joiner takes its ring share
		if _, err := cl.Query(ctx, queries[i%len(queries)].Graph); err != nil {
			log.Fatalf("query %d through the grown fleet: %v", i, err)
		}
	}
	var topo graphcache.RouterTopologyResponse
	adminCall(ctx, http.MethodGet, admin+"/topology", nil, &topo)
	fmt.Printf("fleet is %d backends; scale-down: draining %s\n", len(topo.Backends), third.Addr())

	adminCall(ctx, http.MethodDelete, admin+"/backends/"+third.Addr(), nil, nil)
	adminCall(ctx, http.MethodGet, admin+"/topology", nil, &topo)
	for i := 0; i < 20; i++ {
		if _, err := cl.Query(ctx, queries[i].Graph); err != nil {
			log.Fatalf("query %d after the drain: %v", i, err)
		}
	}
	fmt.Printf("drained back to %d backends, zero failed requests through join and drain\n", len(topo.Backends))

	// 11. Telemetry: one traced query shows the whole path under the id
	// the router minted, and one /metrics scrape yields the fleet's p99 —
	// parsed with the same exposition parser the repo ships, no
	// Prometheus server required.
	traced, err := cl.QueryTrace(ctx, queries[0].Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced query %s: %d spans (first %s)\n",
		traced.Trace.RequestID, len(traced.Trace.Spans), traced.Trace.Spans[0].Name)

	mres, err := http.Get("http://" + rt.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	samples, err := telemetry.ParseProm(mres.Body)
	mres.Body.Close()
	if err != nil {
		log.Fatalf("parsing /metrics: %v", err)
	}
	var totalBuckets []telemetry.Sample
	for _, s := range samples {
		if s.Name == "graphcache_query_duration_seconds_bucket" && s.Labels["stage"] == "total" {
			totalBuckets = append(totalBuckets, s)
		}
	}
	p99 := telemetry.HistogramQuantile(0.99, totalBuckets)
	fmt.Printf("fleet p99 query latency: %.3fms (from %d exposition samples)\n", p99*1000, len(samples))

	// 12. Graceful teardown.
	if err := rt.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := chaos.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	for _, srv := range servers {
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
	}
}

// adminCall runs one request against the router's admin API, decoding
// the JSON reply into out when non-nil and failing the drill on any
// non-200 status.
func adminCall(ctx context.Context, method, url string, body, out any) {
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		log.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v", method, url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(res.Body)
		log.Fatalf("%s %s: %s (%s)", method, url, res.Status, msg)
	}
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			log.Fatalf("%s %s: decoding reply: %v", method, url, err)
		}
	}
}

// breakerOf reads one backend's breaker row from the router's /stats.
func breakerOf(rt *graphcache.Router, addr string) graphcache.RouterBreakerStats {
	for _, b := range rt.BackendStats() {
		if b.Addr == addr {
			return b.Breaker
		}
	}
	log.Fatalf("no /stats row for backend %s", addr)
	return graphcache.RouterBreakerStats{}
}

// waitBreaker polls until addr's breaker reaches the wanted state.
func waitBreaker(rt *graphcache.Router, addr, state string) {
	deadline := time.Now().Add(10 * time.Second)
	for breakerOf(rt, addr).State != state {
		if time.Now().After(deadline) {
			log.Fatalf("backend %s breaker never reached %q", addr, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
