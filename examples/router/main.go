// Serving-tier quickstart: N gcserved replicas behind a gcrouter.
//
// It synthesises a dataset, starts two in-process gcserved backends (the
// same Server type the standalone daemon runs) and a Router over them,
// then queries the fleet through the ordinary Go client — the router
// speaks the gcserved wire API, so clients cannot tell the difference.
// Finally it kills one backend mid-stream to show failover: every query
// is still answered by the survivor. Run with:
//
//	go run ./examples/router
//
// The standalone equivalent, against files on disk:
//
//	gcgen dataset -name aids -count-factor 0.01 -o aids.g
//	gcgen workload -dataset aids.g -type ZZ -n 200 -o queries.g
//	gcserved -dataset aids.g -addr 127.0.0.1:7621 &
//	gcserved -dataset aids.g -addr 127.0.0.1:7622 &
//	gcrouter -backends 127.0.0.1:7621,127.0.0.1:7622 -mode replicate &
//	gcquery  -server 127.0.0.1:7631 -queries queries.g
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	// 1. One dataset and method, shared by the fleet (methods are
	// read-only after construction); each backend owns its own cache.
	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.01, 1), 42)
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})

	// 2. Two gcserved backends on ephemeral ports.
	var backends []string
	var servers []*graphcache.Server
	for i := 0; i < 2; i++ {
		gc := graphcache.New(m, graphcache.Options{AsyncRebuild: true})
		srv := graphcache.NewServer(gc, graphcache.ServerOptions{Addr: "127.0.0.1:0"})
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		go srv.Serve()
		backends = append(backends, srv.Addr())
		servers = append(servers, srv)
	}

	// 3. The router in replicate mode: singles follow feature-hash
	// affinity (each query population's cache hits concentrate on one
	// replica); -mode shard would partition the cache instead.
	rt, err := graphcache.NewRouter(graphcache.RouterOptions{
		Addr:          "127.0.0.1:0",
		Backends:      backends,
		Mode:          graphcache.RouteReplicate,
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	go rt.Serve()
	fmt.Printf("routing over %d backends on http://%s\n", len(backends), rt.Addr())

	// 4. The ordinary gcserved client, pointed at the router.
	cl := graphcache.NewServerClient(rt.Addr())
	ctx := context.Background()

	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, 120)
	if err != nil {
		log.Fatal(err)
	}
	queries := graphcache.TypeA(ds, cfg, 7)

	for i := 0; i < 60; i++ {
		if _, err := cl.Query(ctx, queries[i].Graph); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("60 queries routed")

	// 5. Kill one backend mid-stream: the router ejects it on the first
	// failed dispatch and re-routes to the survivor — no query fails.
	if err := servers[0].Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	for i := 60; i < 120; i++ {
		if _, err := cl.Query(ctx, queries[i].Graph); err != nil {
			log.Fatalf("query %d after backend death: %v", i, err)
		}
	}
	fmt.Println("60 more queries survived one backend's death")

	// 6. Fleet-wide stats through the plain client, router counters from
	// the Router itself.
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	c := rt.Counters()
	fmt.Printf("fleet totals: %d queries, %d cached, %d exact hits\n",
		st.Totals.Queries, st.Cached, st.Totals.ExactHits)
	fmt.Printf("router: routed %d, retried %d, ejections %d\n",
		c.Routed, c.Retried, c.Ejected)

	// 7. Graceful teardown.
	if err := rt.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := servers[1].Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
