// Serving quickstart: GraphCache over the network.
//
// It synthesises a dataset, starts an in-process gcserved (the same
// Server type the standalone daemon runs), then queries it through the Go
// client — singles, which the server coalesces into batches, one
// explicit batch, the same again over the binary wire codec, and a
// streamed batch whose results arrive one by one as verification
// completes. Run with:
//
//	go run ./examples/server
//
// The standalone equivalent, against files on disk:
//
//	gcgen dataset -name aids -count-factor 0.01 -o aids.g
//	gcgen workload -dataset aids.g -type ZZ -n 200 -o queries.g
//	gcserved -dataset aids.g -method ggsx -snapshot aids.snap &
//	gcquery -server 127.0.0.1:7621 -queries queries.g
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"graphcache"
)

func main() {
	log.SetFlags(0)

	// 1. A dataset and a method, as in every GraphCache program.
	ds := graphcache.AIDSLike(graphcache.DefaultAIDS().Scaled(0.01, 1), 42)
	m := graphcache.NewGGSX(ds, graphcache.GGSXOptions{})
	gc := graphcache.New(m, graphcache.Options{AsyncRebuild: true})

	// 2. The serving subsystem in front of the cache. Port 0 picks an
	// ephemeral port; a daemon would use a fixed -addr. With a
	// SnapshotPath, Start would restore cache contents and Shutdown
	// persist them.
	srv := graphcache.NewServer(gc, graphcache.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	fmt.Printf("serving %s on http://%s\n", m.Name(), srv.Addr())

	// 3. A client — what gcquery -server uses, and what any Go
	// application embeds. Non-Go clients speak the same JSON/t-v-e wire
	// format directly.
	cl := graphcache.NewServerClient(srv.Addr())
	ctx := context.Background()

	cfg, err := graphcache.TypeACategory("ZZ", 1.4, []int{4, 8, 12}, 120)
	if err != nil {
		log.Fatal(err)
	}
	queries := graphcache.TypeA(ds, cfg, 7)

	// 4. Concurrent single queries: the server's request coalescer folds
	// simultaneous arrivals into batched QueryBatch executions.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 80; i += 4 {
				if _, err := cl.Query(ctx, queries[i].Graph); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("80 concurrent singles in %v\n", time.Since(start).Round(time.Millisecond))

	// 5. An explicit batch: one round-trip, one QueryBatch execution.
	start = time.Now()
	batch := make([]*graphcache.Graph, 0, 40)
	for _, q := range queries[80:] {
		batch = append(batch, q.Graph)
	}
	results, err := cl.QueryBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	answers := 0
	for _, r := range results {
		answers += len(r.Answer)
	}
	fmt.Printf("batch of %d in %v (%d answers)\n",
		len(results), time.Since(start).Round(time.Millisecond), answers)

	// 6. The binary wire: the same answers in a compact framed codec.
	// The formats negotiate per request (Content-Type/Accept), so text
	// and binary clients share one server; a router even upgrades its
	// backend links automatically as health probes discover the
	// capability.
	bin := graphcache.NewServerClientWith(srv.Addr(), graphcache.ServerClientOptions{WireBinary: true})
	br, err := bin.Query(ctx, queries[0].Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary wire: q0 has %d answers (identical to the text wire)\n", len(br.Answer))

	// 7. A streamed long batch: instead of waiting for the whole batch,
	// each result is flushed as its verification completes — the first
	// answer arrives while the rest are still being verified. Returning
	// an error from the callback (or cancelling ctx) makes the server
	// abandon the batch's remaining verification.
	start = time.Now()
	var first time.Duration
	delivered := 0
	err = cl.QueryBatchStream(ctx, batch, false, func(sr graphcache.ServerStreamResult) error {
		if delivered == 0 {
			first = time.Since(start)
		}
		delivered++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed batch of %d: first result after %v, all after %v\n",
		delivered, first.Round(time.Microsecond), time.Since(start).Round(time.Millisecond))

	// 8. What the cache did, over the wire.
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server totals: %d queries in %d batches, %d cached, %d exact hits, %d sub-iso tests\n",
		st.Totals.Queries, st.Totals.Batches, st.Cached, st.Totals.ExactHits, st.Totals.SubIsoTests)

	// 9. Graceful shutdown (the daemon does this on SIGTERM).
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
}
