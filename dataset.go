package graphcache

import (
	"graphcache/internal/dataset"
	"graphcache/internal/gen"
)

// Dataset is an immutable, densely numbered collection of graphs: graph i
// has ID i. Every query-processing method and the cache operate over a
// Dataset.
type Dataset = dataset.Dataset

// DatasetStats summarises a dataset's shape: graph count, vertex/edge
// means, standard deviations and maxima, average degree and label count.
type DatasetStats = dataset.Stats

// NewDataset wraps a slice of graphs into a Dataset, assigning IDs by
// position.
func NewDataset(graphs []*Graph) *Dataset { return dataset.New(graphs) }

// Live dataset mutations. A Dataset starts as an immutable base
// generation; AddGraphs, RemoveGraphs and EditEdges publish fresh
// immutable generations (epoch-versioned, lock-free for readers), and a
// Cache over a mutation-capable method keeps its answers sound across
// them via Cache.ApplyMutation. See the package documentation's
// "Dynamic datasets" section.

// Mutation is one dataset change — the unit Cache.ApplyMutation applies
// atomically, gcserved journals durably, and gcrouter fans fleet-wide.
// Seq is an optional monotone sequence number for idempotent replay
// (0 = no dedup).
type Mutation = dataset.Mutation

// MutationOp names a mutation kind: OpAdd, OpRemove or OpEdit.
type MutationOp = dataset.Op

const (
	// OpAdd appends Mutation.Graphs as fresh dataset IDs.
	OpAdd = dataset.OpAdd
	// OpRemove tombstones the dataset graphs named by Mutation.IDs.
	OpRemove = dataset.OpRemove
	// OpEdit replaces live graph Mutation.IDs[0] with Mutation.Graphs[0].
	OpEdit = dataset.OpEdit
)

// ParseMutationOp parses the wire spelling of a mutation op ("add",
// "remove" or "edit").
func ParseMutationOp(s string) (MutationOp, bool) { return dataset.ParseOp(s) }

// EdgeEdit is one edge addition or deletion inside a dataset graph,
// applied through ApplyEdgeEdits or Cache.EditGraphEdges.
type EdgeEdit = dataset.EdgeEdit

// ApplyEdgeEdits returns a copy of g (same ID) with the edits applied —
// the usual way to build an OpEdit replacement graph.
func ApplyEdgeEdits(g *Graph, edits []EdgeEdit) (*Graph, error) {
	return dataset.ApplyEdgeEdits(g, edits)
}

// Synthetic dataset generators. The paper evaluates on three real-world
// datasets (AIDS antiviral screen molecules, PDBS macromolecules, PCM
// protein contact maps) plus one GraphGen-built synthetic dataset. The
// real files are not redistributable, so these generators reproduce their
// published shape statistics (§7.2 of the paper) with structural models
// appropriate to each domain. All are deterministic given the seed.

// MoleculeConfig parameterises AIDSLike: molecule-style graphs built as a
// random tree backbone plus ring-closing edges (average degree ≈ 2.09).
type MoleculeConfig = gen.MoleculeConfig

// BackboneConfig parameterises PDBSLike: long chains with occasional
// branches and cross links — few but large graphs (average degree ≈ 2.13).
type BackboneConfig = gen.BackboneConfig

// ContactMapConfig parameterises PCMLike: residue chains plus short- and
// long-range contacts — dense graphs (average degree ≈ 22.4).
type ContactMapConfig = gen.ContactMapConfig

// RandomConfig parameterises SyntheticLike: GraphGen-style random graphs
// with a spanning chain and uniform random edges (average degree ≈ 19.5).
type RandomConfig = gen.RandomConfig

// DefaultAIDS returns the configuration matching the AIDS dataset's
// published statistics: 40,000 graphs, ≈45 vertices and ≈47 edges each.
// Use Scaled to shrink it, e.g. DefaultAIDS().Scaled(0.05, 1) keeps the
// graph shapes but generates 5% as many graphs.
func DefaultAIDS() MoleculeConfig { return gen.DefaultAIDS() }

// DefaultPDBS returns the configuration matching the PDBS dataset:
// 600 graphs of ≈2,939 vertices and ≈3,064 edges.
func DefaultPDBS() BackboneConfig { return gen.DefaultPDBS() }

// DefaultPCM returns the configuration matching the PCM dataset:
// 200 graphs of ≈377 vertices and ≈4,340 edges.
func DefaultPCM() ContactMapConfig { return gen.DefaultPCM() }

// DefaultSynthetic returns the configuration matching the paper's
// synthetic dataset: 1,000 graphs of ≈892 vertices and ≈7,991 edges.
func DefaultSynthetic() RandomConfig { return gen.DefaultSynthetic() }

// AIDSLike generates a molecule-style dataset from cfg.
func AIDSLike(cfg MoleculeConfig, seed int64) *Dataset { return cfg.Generate(seed) }

// PDBSLike generates a macromolecule-backbone dataset from cfg.
func PDBSLike(cfg BackboneConfig, seed int64) *Dataset { return cfg.Generate(seed) }

// PCMLike generates a protein-contact-map dataset from cfg.
func PCMLike(cfg ContactMapConfig, seed int64) *Dataset { return cfg.Generate(seed) }

// SyntheticLike generates a GraphGen-style random dataset from cfg.
func SyntheticLike(cfg RandomConfig, seed int64) *Dataset { return cfg.Generate(seed) }
