package graphcache

import (
	"time"

	"graphcache/internal/server"
)

// Server serves one Cache over HTTP — the gcserved subsystem: a JSON API
// over the t/v/e graph wire format (POST /query, POST /querybatch,
// GET /stats, GET /healthz), a request coalescer that folds
// concurrently-arriving single queries into Cache.QueryBatch calls, and
// the snapshot lifecycle of the paper's Cache Manager (Start loads cache
// contents from disk, Shutdown drains in-flight requests and writes them
// back). See the package documentation's "Serving over the network"
// section and cmd/gcserved for the standalone daemon.
type Server = server.Server

// ServerOptions configures a Server: listen address, snapshot path, and
// the coalescer's max-batch-size / max-delay window.
type ServerOptions = server.Options

// ServerClient is the Go client for a gcserved instance, used by tests,
// by `gcquery -server` and by applications.
type ServerClient = server.Client

// ServerQueryResponse is one served query's answer and statistics.
type ServerQueryResponse = server.QueryResponse

// ServerStatsResponse is the GET /stats payload: lifetime totals plus the
// serving configuration summary.
type ServerStatsResponse = server.StatsResponse

// NewServer wraps a Cache in an HTTP serving front end. Run the daemon
// lifecycle with Start, Serve and Shutdown, or embed Handler in an
// existing mux.
func NewServer(c *Cache, opts ServerOptions) *Server { return server.New(c, opts) }

// NewServerClient returns a client for the gcserved at addr — a
// "host:port" pair or a full "http://..." base URL.
func NewServerClient(addr string) *ServerClient { return server.NewClient(addr) }

// DefaultCoalesceDelay is a reasonable request-coalescing window for
// interactive serving: long enough for concurrent requests to gather into
// batches, short enough to be invisible next to sub-iso verification
// costs.
const DefaultCoalesceDelay = 2 * time.Millisecond
