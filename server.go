package graphcache

import (
	"time"

	"graphcache/internal/router"
	"graphcache/internal/server"
)

// Server serves one Cache over HTTP — the gcserved subsystem: a JSON API
// over the t/v/e graph wire format (POST /query, POST /querybatch,
// GET /stats, GET /healthz), a request coalescer that folds
// concurrently-arriving single queries into Cache.QueryBatch calls, and
// the snapshot lifecycle of the paper's Cache Manager (Start loads cache
// contents from disk, Shutdown drains in-flight requests and writes them
// back). See the package documentation's "Serving over the network"
// section and cmd/gcserved for the standalone daemon.
type Server = server.Server

// ServerOptions configures a Server: listen address, snapshot path, and
// the coalescer's max-batch-size / max-delay window.
type ServerOptions = server.Options

// ServerClient is the Go client for a gcserved instance, used by tests,
// by `gcquery -server` and by applications. It retries refused work
// (429/503) and, for idempotent requests, transport failures, with
// jittered exponential backoff honouring Retry-After hints. It speaks
// either wire format — the JSON/t-v-e default or the binary codec
// (ServerClientOptions.WireBinary, switchable live with SetBinaryWire)
// — and streams batches incrementally with QueryBatchStream.
type ServerClient = server.Client

// ServerClientOptions configures a ServerClient's resilience and wire
// format: per-attempt request timeout, the retry budget/backoff
// envelope, and WireBinary to opt into the binary codec (answers are
// identical either way; see the package documentation's "Wire protocol"
// section).
type ServerClientOptions = server.ClientOptions

// ServerStreamResult is one result of a streamed batch
// (ServerClient.QueryBatchStream, or POST /querybatch with
// Accept: application/x-ndjson on the wire): the answer for the
// Index-th query, delivered as soon as its verification completed.
type ServerStreamResult = server.StreamResult

// ServerStatusError is a non-2xx reply from a gcserved or gcrouter,
// carrying the HTTP status code, the server's error message and its
// Retry-After hint. Unwrap client errors with errors.As to tell an
// overload refusal (429/503) from a request fault (other 4xx).
type ServerStatusError = server.StatusError

// ServerQueryResponse is one served query's answer and statistics.
type ServerQueryResponse = server.QueryResponse

// ServerStatsResponse is the GET /stats payload: lifetime totals plus the
// serving configuration summary.
type ServerStatsResponse = server.StatsResponse

// ServerWarmResponse reports a completed snapshot warm-up (POST /warm or
// Server.WarmFrom): the peer the snapshot was shipped from and how many
// cached queries were installed.
type ServerWarmResponse = server.WarmResponse

// NewServer wraps a Cache in an HTTP serving front end. Run the daemon
// lifecycle with Start, Serve and Shutdown, or embed Handler in an
// existing mux.
func NewServer(c *Cache, opts ServerOptions) *Server { return server.New(c, opts) }

// NewServerClient returns a client for the gcserved at addr — a
// "host:port" pair or a full "http://..." base URL — with default
// resilience options.
func NewServerClient(addr string) *ServerClient { return server.NewClient(addr) }

// NewServerClientWith returns a client for the gcserved at addr with
// explicit resilience options.
func NewServerClientWith(addr string, opts ServerClientOptions) *ServerClient {
	return server.NewClientWith(addr, opts)
}

// ServerMutateRequest is the POST /mutate body accepted by gcserved and
// gcrouter alike: op ("add", "remove" or "edit"), graphs in t/v/e text
// for add/edit, target IDs for remove/edit, and an optional monotone
// Seq for idempotent replay. Submit with ServerClient.Mutate.
type ServerMutateRequest = server.MutateRequest

// ServerMutateResponse reports one applied (or deduplicated) mutation:
// whether it applied, the dataset epoch it landed at, the sequence
// number consumed, and the cache-maintenance counts.
type ServerMutateResponse = server.MutateResponse

// RouterMutateResponse is the router's POST /mutate reply: the fleet
// outcome (a JSON superset of ServerMutateResponse, so a plain
// ServerClient works against a router unchanged) plus one
// RouterMutateBackendResult row per backend.
type RouterMutateResponse = router.MutateResponse

// RouterMutateBackendResult is one backend's outcome within a fleet
// mutation fan-out: applied or not, the epoch it reached, and its error
// if the fan-out leg failed (leaving it lagging and diverted).
type RouterMutateBackendResult = router.MutateBackendResult

// DefaultCoalesceDelay is a reasonable request-coalescing window for
// interactive serving: long enough for concurrent requests to gather into
// batches, short enough to be invisible next to sub-iso verification
// costs.
const DefaultCoalesceDelay = 2 * time.Millisecond

// Router fronts N gcserved backends behind the same wire API — the
// gcrouter serving tier: feature-hash affinity or shard routing,
// per-backend circuit breakers with half-open readmission, bounded
// dispatch queues with backpressure, front-door overload shedding,
// failover re-dispatch and an aggregated /stats. Any ServerClient works
// against a Router unchanged. See the package documentation's "Serving
// tier" and "Load management" sections and cmd/gcrouter for the
// standalone daemon.
type Router = router.Router

// RouterOptions configures a Router: listen address, backend list,
// routing mode, health-probe cadence, and the load-management knobs
// (queue bound, error budget, breaker window/cooldown, shed threshold).
type RouterOptions = router.Options

// RouterMode selects how a Router spreads queries over its backends.
type RouterMode = router.Mode

const (
	// RouteReplicate treats every backend as a full cache replica
	// (affinity-routed singles, whole batches to the least-pending
	// backend).
	RouteReplicate = router.Replicate
	// RouteShard partitions queries across backends by feature hash
	// (batches split per backend and scatter-gathered).
	RouteShard = router.Shard
)

// RouterStatsResponse is the router's aggregated GET /stats payload: a
// JSON superset of ServerStatsResponse with per-backend detail and the
// router's own counters.
type RouterStatsResponse = router.StatsResponse

// RouterCounters are the router's lifetime routing counters (routed,
// retried, ejected — breaker opens — and shed), as returned by
// Router.Counters.
type RouterCounters = router.Counters

// RouterBackendStats is one backend's row in the router's view: breaker
// state, transition counters, and queue depth, as returned by
// Router.BackendStats and embedded per backend in RouterStatsResponse.
type RouterBackendStats = router.BackendStats

// RouterBreakerStats is one backend's circuit-breaker observability row:
// current state plus monotone open/half-open/close transition counters,
// so a poller detects breaker cycles it never saw live.
type RouterBreakerStats = router.BreakerStats

// RouterJoinRequest is the admin API's POST /backends body: the gcserved
// address joining the fleet.
type RouterJoinRequest = router.JoinRequest

// RouterJoinResponse reports a completed fleet join (Router.Join or the
// admin API's POST /backends): the new backend's address, the peer it
// was warmed from, and how many cached queries it ingested before its
// first dispatch.
type RouterJoinResponse = router.JoinResponse

// RouterTopologyResponse is the admin API's GET /topology payload: the
// fleet as the router sees it right now, one RouterBackendStats row per
// backend (draining backends included).
type RouterTopologyResponse = router.TopologyResponse

// NewRouter builds the gcrouter serving tier over running gcserved
// backends. Run the daemon lifecycle with Start, Serve and Shutdown, or
// embed Handler in an existing mux.
func NewRouter(opts RouterOptions) (*Router, error) { return router.New(opts) }

// ParseRouterMode converts a mode name ("replicate" or "shard") into a
// RouterMode.
func ParseRouterMode(s string) (RouterMode, error) { return router.ParseMode(s) }
