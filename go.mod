module graphcache

go 1.24
